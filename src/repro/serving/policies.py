"""Ratio policies: interchangeable per-batch 4-bit-ratio selection strategies.

Every policy implements the :class:`~repro.serving.engine.RatioPolicy`
protocol: the engine shows it the model's admitted trace once per run
(:meth:`on_run_start`) and then asks for a ratio per batch
(:meth:`select`).  Fixed-ratio, schedule-driven and controller-driven
deployments are thereby interchangeable under one engine — the API
consolidation that used to be spread across ``ServingSimulator`` arguments
(``ratio`` vs ``ratio_schedule``) and ``AdaptiveServingSimulator``.

**Signature migration (PR 3).**  Policies historically saw only the batch
start time: ``select(time: float) -> float``.  The engine now builds a
:class:`PolicyContext` per batch carrying the start time *plus* queue depth,
batch size, model name and server index, so policies can trade accuracy for
latency based on instantaneous load (see :class:`QueueDepthRatioPolicy`).
Both signatures are supported:

* **Legacy (1-arg)** — implement ``select(time)``; the engine wraps the
  policy through :func:`policy_selector`, which passes ``context.time``.
  All pre-PR-3 policies below keep this form, preserving the seed float
  arithmetic bit-for-bit.
* **Context-aware** — set the class attribute ``accepts_context = True``
  and implement ``select(context: PolicyContext)``.

``policy_selector(policy)`` returns the normalized ``context -> ratio``
callable either way; user code rarely needs it directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, TYPE_CHECKING

import numpy as np

from repro.data.traces import RequestTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.controller import AdaptiveRatioController
    from repro.serving.telemetry import TelemetryBus


@dataclass
class GenerationStepContext:
    """Per-iteration generation state handed to ratio policies.

    Built by the :class:`~repro.serving.generation.IterationScheduler` once
    per decode iteration and attached to :attr:`PolicyContext.generation`,
    so a policy can switch precision *mid-sequence*: ``iteration`` is the
    server's 0-based iteration count, ``decode_width`` the live sequences
    decoding this step, ``prefill_requests``/``prefill_tokens`` the joiners
    being prefilled first (and their total prompt tokens),
    ``tokens_in_flight`` the token footprint of the running batch (prompt +
    generated so far), and ``waiting`` the queued sequences that have
    arrived but not yet joined.  ``None`` on the one-shot batch paths.
    """

    iteration: int = 0
    decode_width: int = 0
    prefill_requests: int = 0
    prefill_tokens: int = 0
    tokens_in_flight: int = 0
    waiting: int = 0


@dataclass
class PolicyContext:
    """Per-batch information handed to context-aware ratio policies.

    ``time`` is the batch service start (simulation seconds) — exactly the
    value legacy 1-arg policies received.  ``queue_depth`` counts the
    requests that have arrived and are still waiting when the batch forms
    (including the ones about to ride in it), ``batch_size`` is the size of
    the batch being launched, and ``model``/``server`` identify the endpoint
    and accelerator.

    When the engine carries a :class:`~repro.serving.telemetry.TelemetryBus`
    it is exposed as ``telemetry`` (``None`` otherwise), giving policies
    windowed *per-server* signals — served rate, utilization, queue depth —
    instead of only the instantaneous ones; ``num_active`` is the current
    size of the active server set (elastic clusters shrink/grow it).

    On iteration-level generation runs ``generation`` carries the decode
    step's :class:`GenerationStepContext` (``None`` on one-shot batch
    paths), so precision can react to decode pressure per iteration.
    """

    time: float
    queue_depth: int = 0
    batch_size: int = 0
    model: str = ""
    server: int = 0
    telemetry: Optional["TelemetryBus"] = None
    num_active: int = 0
    generation: Optional[GenerationStepContext] = None


def policy_selector(policy) -> Callable[[PolicyContext], float]:
    """Normalize a policy to the context signature.

    Context-aware policies (``accepts_context = True``) are returned as-is;
    legacy 1-arg policies are wrapped in an adapter that forwards
    ``context.time``, so their float arithmetic is untouched.
    """
    if getattr(policy, "accepts_context", False):
        return policy.select
    select = policy.select
    return lambda context: select(context.time)


class FixedRatioPolicy:
    """Always run at one 4-bit ratio (the fixed deployments of Figure 8)."""

    def __init__(self, ratio: float = 0.0) -> None:
        self.ratio = float(ratio)

    def on_run_start(self, trace: RequestTrace) -> None:
        pass

    def select(self, time: float) -> float:
        return self.ratio


class RatioSchedulePolicy:
    """Ratio from an arbitrary ``time -> ratio`` schedule callable."""

    def __init__(self, schedule: Callable[[float], float]) -> None:
        self.schedule = schedule

    def on_run_start(self, trace: RequestTrace) -> None:
        pass

    def select(self, time: float) -> float:
        return float(self.schedule(time))


class RoundRobinRatioPolicy:
    """Cycle through a ratio list, one step per batch.

    Serving tests and benchmarks use this to drive heterogeneous-ratio batch
    streams through a :class:`~repro.serving.executors.RuntimeExecutor`:
    every batch switches the prepared runtime to the next ratio, which must
    stay an O(1) variable update (no weight requantization).
    """

    def __init__(self, ratios: Sequence[float]) -> None:
        if not len(ratios):
            raise ValueError("ratios must be non-empty")
        self.ratios = [float(r) for r in ratios]
        self._next = 0

    def on_run_start(self, trace: RequestTrace) -> None:
        self._next = 0

    def select(self, time: float) -> float:
        ratio = self.ratios[self._next % len(self.ratios)]
        self._next += 1
        return ratio


class QueueDepthRatioPolicy:
    """Batch-size-aware load shedding: raise the 4-bit ratio as the queue grows.

    A context-aware policy (the PR 3 ``PolicyContext`` signature): thresholds
    map instantaneous queue depth to a ratio, so the engine spends accuracy
    exactly when requests are piling up and returns to high precision the
    moment the queue drains — a per-batch, reactive complement to the
    per-window :class:`AdaptiveRatioPolicy`.

    ``thresholds`` maps minimum queue depth to the ratio used at or above
    that depth; the highest satisfied threshold wins.  Depths below every
    threshold use ``base_ratio``.
    """

    accepts_context = True

    def __init__(
        self,
        thresholds: Dict[int, float],
        base_ratio: float = 0.0,
    ) -> None:
        if not thresholds:
            raise ValueError("thresholds must be non-empty")
        self.thresholds = sorted(
            (int(depth), float(ratio)) for depth, ratio in thresholds.items()
        )
        self.base_ratio = float(base_ratio)

    def on_run_start(self, trace: RequestTrace) -> None:
        pass

    def select(self, context: PolicyContext) -> float:
        ratio = self.base_ratio
        for depth, depth_ratio in self.thresholds:
            if context.queue_depth >= depth:
                ratio = depth_ratio
        return ratio


class DecodePressureRatioPolicy:
    """Mid-sequence precision switching driven by decode pressure.

    A context-aware policy for iteration-level generation runs: when the
    token footprint of the running batch plus the queued backlog exceeds
    ``pressure_threshold`` tokens, the iteration runs at ``high_ratio``
    (cheaper, more 4-bit); once pressure drains it returns to
    ``base_ratio`` — so a single sequence's tokens can be generated at
    *different* precisions depending on the load its server was under at
    each step.  Pressure counts ``tokens_in_flight`` plus
    ``prefill_tokens`` about to join, plus ``waiting * waiting_weight``
    (each queued sequence's expected footprint).  On one-shot batch paths
    (no generation context) it falls back to queue depth against
    ``queue_depth_fallback``.
    """

    accepts_context = True

    def __init__(
        self,
        pressure_threshold: int,
        base_ratio: float = 0.0,
        high_ratio: float = 1.0,
        waiting_weight: float = 0.0,
        queue_depth_fallback: int = 8,
    ) -> None:
        if pressure_threshold < 1:
            raise ValueError("pressure_threshold must be >= 1 tokens")
        self.pressure_threshold = int(pressure_threshold)
        self.base_ratio = float(base_ratio)
        self.high_ratio = float(high_ratio)
        self.waiting_weight = float(waiting_weight)
        self.queue_depth_fallback = int(queue_depth_fallback)
        self.switches = 0
        self._last: Optional[float] = None

    def on_run_start(self, trace: RequestTrace) -> None:
        self.switches = 0
        self._last = None

    def select(self, context: PolicyContext) -> float:
        generation = context.generation
        if generation is not None:
            pressure = (
                generation.tokens_in_flight
                + generation.prefill_tokens
                + generation.waiting * self.waiting_weight
            )
            loaded = pressure >= self.pressure_threshold
        else:
            loaded = context.queue_depth >= self.queue_depth_fallback
        ratio = self.high_ratio if loaded else self.base_ratio
        if self._last is not None and ratio != self._last:
            self.switches += 1
        self._last = ratio
        return ratio


class AdaptiveRatioPolicy:
    """Per-window adaptation driven by an :class:`AdaptiveRatioController`.

    Reproduces the Figure 9 control loop exactly as the seed
    ``AdaptiveServingSimulator`` did: the trace is divided into control
    windows; at every window boundary the controller observes the window's
    request rate and picks the ratio for that window.  ``window_ratios`` and
    ``timeline`` expose the resulting plan for reporting (average ratio,
    effective accuracy).
    """

    def __init__(
        self, controller: "AdaptiveRatioController", control_window: float = 1.0
    ) -> None:
        self.controller = controller
        self.control_window = float(control_window)
        self.window_ratios: np.ndarray = np.zeros(0, dtype=np.float64)
        self.timeline: List[Dict[str, float]] = []

    def on_run_start(self, trace: RequestTrace) -> None:
        num_windows = int(np.ceil(trace.duration / self.control_window))
        self.window_ratios = np.zeros(num_windows, dtype=np.float64)
        self.timeline = []
        for window in range(num_windows):
            start = window * self.control_window
            end = min(start + self.control_window, trace.duration)
            observed_rate = trace.rate_in_window(start, end)
            ratio = self.controller.update(observed_rate)
            self.window_ratios[window] = ratio
            self.timeline.append({"start": start, "rate": observed_rate, "ratio": ratio})

    def select(self, time: float) -> float:
        if self.window_ratios.size == 0:
            return float(self.controller.current_ratio)
        window = min(int(time / self.control_window), self.window_ratios.size - 1)
        return float(self.window_ratios[window])

    @property
    def average_ratio(self) -> float:
        """Time-averaged ratio over the current run's control windows."""
        if self.window_ratios.size == 0:
            return 0.0
        return float(np.mean(self.window_ratios))


class PerServerAdaptiveRatioPolicy:
    """Per-server ratio adaptation driven by per-server telemetry signals.

    The seed controller (and :class:`AdaptiveRatioPolicy`) observes the
    *global* trace rate per control window — every server then runs the same
    ratio, even when placement has concentrated the load on a few of them.
    This policy closes the ROADMAP item: it keeps **one
    :class:`AdaptiveRatioController` per server** (built by
    ``controller_factory``, so each holds independent state) and feeds each
    controller the rate *its* server actually served over the previous
    window, read from the engine's
    :class:`~repro.serving.telemetry.TelemetryBus` through the policy
    context.  Without a telemetry bus it falls back to the instantaneous
    queue-depth-per-window rate, a conservative local signal.

    A controller is updated lazily: the first batch a server runs in a new
    control window triggers one ``update()``.  The rate it observes is the
    served rate of the *telemetry bus's* most recent completed window — the
    freshest per-server signal available — so ``control_window`` (the
    update cadence) and the bus's aggregation window may differ without the
    policy silently reading a stale interval.  ``timeline`` records every
    update as ``{"server", "window", "rate", "ratio"}`` for reporting.
    """

    accepts_context = True

    def __init__(
        self,
        controller_factory: Callable[[], "AdaptiveRatioController"],
        control_window: float = 1.0,
    ) -> None:
        self.controller_factory = controller_factory
        self.control_window = float(control_window)
        self.controllers: Dict[int, "AdaptiveRatioController"] = {}
        self.timeline: List[Dict[str, float]] = []
        self._last_window: Dict[int, int] = {}

    def on_run_start(self, trace: RequestTrace) -> None:
        self.controllers = {}
        self.timeline = []
        self._last_window = {}

    def controller_for(self, server: int) -> "AdaptiveRatioController":
        controller = self.controllers.get(server)
        if controller is None:
            controller = self.controllers[server] = self.controller_factory()
        return controller

    def select(self, context: PolicyContext) -> float:
        server = context.server
        controller = self.controller_for(server)
        window = int(context.time / self.control_window)
        if window > self._last_window.get(server, -1):
            if context.telemetry is not None:
                # Query in the *bus's* window units: the most recent
                # completed telemetry window before this batch's start.
                bus_window = context.telemetry.window_index(context.time)
                rate = context.telemetry.served_rate(server, bus_window - 1)
            else:
                rate = context.queue_depth / self.control_window
            ratio = controller.update(float(rate))
            self.timeline.append(
                {
                    "server": float(server),
                    "window": float(window),
                    "rate": float(rate),
                    "ratio": float(ratio),
                }
            )
            self._last_window[server] = window
        return float(controller.current_ratio)

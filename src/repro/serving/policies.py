"""Ratio policies: interchangeable per-batch 4-bit-ratio selection strategies.

Every policy implements the :class:`~repro.serving.engine.RatioPolicy`
protocol: the engine shows it the model's admitted trace once per run
(:meth:`on_run_start`) and then asks for a ratio per batch
(:meth:`select`).  Fixed-ratio, schedule-driven and controller-driven
deployments are thereby interchangeable under one engine — the API
consolidation that used to be spread across ``ServingSimulator`` arguments
(``ratio`` vs ``ratio_schedule``) and ``AdaptiveServingSimulator``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, TYPE_CHECKING

import numpy as np

from repro.data.traces import RequestTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.controller import AdaptiveRatioController


class FixedRatioPolicy:
    """Always run at one 4-bit ratio (the fixed deployments of Figure 8)."""

    def __init__(self, ratio: float = 0.0) -> None:
        self.ratio = float(ratio)

    def on_run_start(self, trace: RequestTrace) -> None:
        pass

    def select(self, time: float) -> float:
        return self.ratio


class RatioSchedulePolicy:
    """Ratio from an arbitrary ``time -> ratio`` schedule callable."""

    def __init__(self, schedule: Callable[[float], float]) -> None:
        self.schedule = schedule

    def on_run_start(self, trace: RequestTrace) -> None:
        pass

    def select(self, time: float) -> float:
        return float(self.schedule(time))


class RoundRobinRatioPolicy:
    """Cycle through a ratio list, one step per batch.

    Serving tests and benchmarks use this to drive heterogeneous-ratio batch
    streams through a :class:`~repro.serving.executors.RuntimeExecutor`:
    every batch switches the prepared runtime to the next ratio, which must
    stay an O(1) variable update (no weight requantization).
    """

    def __init__(self, ratios: Sequence[float]) -> None:
        if not len(ratios):
            raise ValueError("ratios must be non-empty")
        self.ratios = [float(r) for r in ratios]
        self._next = 0

    def on_run_start(self, trace: RequestTrace) -> None:
        self._next = 0

    def select(self, time: float) -> float:
        ratio = self.ratios[self._next % len(self.ratios)]
        self._next += 1
        return ratio


class AdaptiveRatioPolicy:
    """Per-window adaptation driven by an :class:`AdaptiveRatioController`.

    Reproduces the Figure 9 control loop exactly as the seed
    ``AdaptiveServingSimulator`` did: the trace is divided into control
    windows; at every window boundary the controller observes the window's
    request rate and picks the ratio for that window.  ``window_ratios`` and
    ``timeline`` expose the resulting plan for reporting (average ratio,
    effective accuracy).
    """

    def __init__(
        self, controller: "AdaptiveRatioController", control_window: float = 1.0
    ) -> None:
        self.controller = controller
        self.control_window = float(control_window)
        self.window_ratios: np.ndarray = np.zeros(0, dtype=np.float64)
        self.timeline: List[Dict[str, float]] = []

    def on_run_start(self, trace: RequestTrace) -> None:
        num_windows = int(np.ceil(trace.duration / self.control_window))
        self.window_ratios = np.zeros(num_windows, dtype=np.float64)
        self.timeline = []
        for window in range(num_windows):
            start = window * self.control_window
            end = min(start + self.control_window, trace.duration)
            observed_rate = trace.rate_in_window(start, end)
            ratio = self.controller.update(observed_rate)
            self.window_ratios[window] = ratio
            self.timeline.append({"start": start, "rate": observed_rate, "ratio": ratio})

    def select(self, time: float) -> float:
        if self.window_ratios.size == 0:
            return float(self.controller.current_ratio)
        window = min(int(time / self.control_window), self.window_ratios.size - 1)
        return float(self.window_ratios[window])

    @property
    def average_ratio(self) -> float:
        """Time-averaged ratio over the current run's control windows."""
        if self.window_ratios.size == 0:
            return 0.0
        return float(np.mean(self.window_ratios))

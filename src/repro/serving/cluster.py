"""Cluster control plane: heterogeneous placement + telemetry + autoscaling.

The engine (:mod:`repro.serving.engine`) gives K server clocks one queue and
pluggable dispatch; this module is the layer *above* it — the part of a
production serving system that decides what the cluster looks like:

* :class:`ServerSpec` — one server's identity: a latency backend derived
  from the :mod:`repro.hardware` GPU/NPU models (or a real executor) plus a
  scalar ``speed`` (requests/second at a reference batch) that placement
  weighs.  :func:`gpu_server` and :func:`npu_server` build specs straight
  from the device catalogs, so a cluster can mix e.g. one fast GPU with two
  slow NPUs.
* **Placement** — :class:`~repro.serving.placement.Placer` implementations
  are resolved by name (``"free_clock"``, ``"least_work"``, ``"weighted"``)
  with speeds taken from the specs, or passed as instances.
* **Telemetry** — every :class:`ClusterEngine` owns a
  :class:`~repro.serving.telemetry.TelemetryBus`; the engine publishes
  per-batch/per-drop events into it and policies read it through
  :class:`~repro.serving.policies.PolicyContext`.
* :class:`Autoscaler` — a window-boundary policy deciding how many servers
  stay active.  :class:`QueueDepthAutoscaler` and
  :class:`SloLatencyAutoscaler` implement hysteresis-based scaling on queue
  depth and windowed latency percentiles;
  :class:`PredictiveFaultAutoscaler` additionally watches per-server
  telemetry trends and provisions *before* the SLO window breaks.  Scale
  decisions are applied via
  :meth:`~repro.serving.engine.ServingEngine.set_active_servers` and
  recorded as :class:`~repro.serving.telemetry.ScaleEvent` in the timeline.
* **Failure domains** — every spec carries a ``zone``/``rack`` identity;
  :class:`ClusterTopology` groups servers by the failure domain they share
  fate with.  Domain-scoped faults (``zone_outage``, ``rack_slowdown``)
  expand to per-server events against the topology,
  :class:`~repro.serving.placement.SpreadPlacer` keeps load from
  concentrating in one domain, and with ``min_domains`` set the autoscaler
  never parks a model's way down to a single domain.
* **Warm spares** — a :class:`~repro.serving.resilience.WarmSparePool`
  holds pre-replicated standby servers out of the ordinary active set; a
  crash of an active server *promotes* the fastest healthy spare with only
  the pool's ``promotion_latency`` (not the cold ``startup_delay``), and a
  later recovery demotes a spare back to reserve.  Both land on the
  telemetry timeline as ``"promote"``/``"demote"`` scale events.

A :class:`ClusterEngine` with one GPU spec, no placer and no autoscaler
degenerates to the seed single-server FIFO simulator (bit-identical
latencies); see ``tests/test_serving_cluster.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, Set, Tuple, Union

import numpy as np

from repro.data.traces import RequestTrace
from repro.hardware.npu import NpuConfig, NpuLatencyModel
from repro.serving.core import WINDOW_BOUNDARY, EventCalendar
from repro.serving.engine import (
    BatchingConfig,
    EngineResult,
    Executor,
    RatioPolicy,
    Request,
    ServingEngine,
)
from repro.serving.executors import ModeledExecutor
from repro.serving.metrics import attainment_within, latency_percentile
from repro.serving.placement import (
    FreeClockPlacer,
    LeastOutstandingWorkPlacer,
    ModelAffinityPlacer,
    Placer,
    PredictivePlacer,
    ServiceEstimator,
    SpreadPlacer,
    WeightedSpeedPlacer,
)
from repro.serving.resilience import (
    CheckpointPolicy,
    DegradableExecutor,
    FaultEvent,
    FaultSchedule,
    MigrationPolicy,
    WarmSparePool,
)
from repro.serving.schedulers import Scheduler
from repro.serving.simulator import ServiceTimeModel
from repro.serving.telemetry import ClusterWindowStats, ScaleEvent, TelemetryBus


# ----------------------------------------------------------------------
# Server profiles
# ----------------------------------------------------------------------
@dataclass
class ServerSpec:
    """One server of a (possibly heterogeneous) cluster.

    ``service_model`` is the analytic latency backend for modeled execution;
    ``executor`` optionally overrides it with any
    :class:`~repro.serving.engine.Executor` (e.g. a
    :class:`~repro.serving.executors.RuntimeExecutor` owning real prepared
    kernels).  ``speed`` is the server's serving rate in requests/second at
    the reference batch — only the *ratios* between specs matter, and the
    speed-aware placers consume them verbatim.

    ``zone`` / ``rack`` are the server's failure-domain identity: servers
    sharing a zone (or, absent zones, a rack) share fate under correlated
    faults (``zone_outage``, ``rack_slowdown``).  Both default to ``""`` —
    no declared domain, every server its own island — so existing configs
    are untouched; :class:`ClusterTopology` derives the domain map.

    ``health`` / ``slow_factor`` are run-time state maintained by the fault
    plane (:mod:`repro.serving.resilience`): ``"healthy"`` serves at nominal
    speed, ``"degraded"`` serves with service times inflated by
    ``slow_factor``, and ``"failed"`` serves nothing (the control plane
    keeps it out of the active set until it recovers).  A
    :class:`ClusterEngine` given a fault schedule resets both per run.
    """

    name: str
    speed: float
    service_model: Optional[ServiceTimeModel] = None
    executor: Optional[Executor] = None
    device: str = ""
    zone: str = ""
    rack: str = ""
    health: str = "healthy"
    slow_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ValueError("speed must be positive (requests/second)")
        if self.service_model is None and self.executor is None:
            raise ValueError("a ServerSpec needs a service_model or an executor")

    @property
    def available(self) -> bool:
        """Whether the server may hold a place in the active set."""
        return self.health != "failed"

    def fail(self) -> None:
        self.health = "failed"

    def degrade(self, factor: float) -> None:
        if factor <= 1.0:
            raise ValueError("a slowdown needs factor > 1")
        self.health = "degraded"
        self.slow_factor = float(factor)

    def recover(self) -> None:
        self.health = "healthy"
        self.slow_factor = 1.0

    def build_executor(self) -> Executor:
        """The executor serving this server's batches."""
        if self.executor is not None:
            return self.executor
        return ModeledExecutor(self.service_model)

    def estimate_batch_seconds(
        self,
        batch_size: int,
        mode: str = "int8",
        ratio: float = 0.0,
        residual: float = 1.0,
        transfer: float = 0.0,
    ) -> float:
        """Estimated service seconds for one batch (speed fallback without
        a service model).

        ``residual`` scales the estimate for partially-checkpointed work: a
        migrated cohort whose largest surviving demand is ``1 - progress``
        costs only that fraction of the full batch (see
        :class:`~repro.serving.resilience.CheckpointPolicy`).  ``transfer``
        adds the cohort's checkpoint-restore seconds on top (see
        :meth:`~repro.serving.resilience.StepCheckpoint.restore_seconds`) —
        a migrated batch is cheap to *re-execute* but not free to *land*.
        """
        if not 0 < residual <= 1:
            raise ValueError("residual must be in (0, 1]")
        if transfer < 0:
            raise ValueError("transfer must be >= 0 seconds")
        if self.service_model is not None:
            return (
                self.service_model.batch_latency(batch_size, mode, ratio) * residual
                + transfer
            )
        return batch_size / self.speed * residual + transfer


def _measured_speed(
    service_model: ServiceTimeModel, reference_batch: int, mode: str
) -> float:
    latency = service_model.batch_latency(reference_batch, mode)
    if latency <= 0:
        raise ValueError("reference batch latency must be positive")
    return reference_batch / latency


def gpu_server(
    name: str,
    model_name: str = "vit_base",
    gpu: str = "a6000",
    anchor_batches: Sequence[int] = (1, 8, 16, 32, 64, 128),
    reference_batch: int = 64,
    mode: str = "int8",
    zone: str = "",
    rack: str = "",
) -> ServerSpec:
    """A GPU-backed server profile from the :mod:`repro.hardware.gpu` model.

    ``speed`` is measured from the device's own latency model at
    ``reference_batch`` in ``mode`` — the number placement weighs, derived
    rather than guessed.  ``zone``/``rack`` declare the server's failure
    domain (see :class:`ClusterTopology`).
    """
    service = ServiceTimeModel(model_name, gpu=gpu, anchor_batches=anchor_batches)
    return ServerSpec(
        name=name,
        speed=_measured_speed(service, reference_batch, mode),
        service_model=service,
        device=f"gpu:{gpu}",
        zone=zone,
        rack=rack,
    )


def npu_server(
    name: str,
    model_name: str = "vit_base",
    config: Optional[NpuConfig] = None,
    anchor_batches: Sequence[int] = (1, 8, 16, 32, 64, 128),
    reference_batch: int = 64,
    mode: str = "int8",
    zone: str = "",
    rack: str = "",
) -> ServerSpec:
    """An NPU-backed server profile from the :mod:`repro.hardware.npu` model.

    The cycle model is adapted to the serving interface through
    :class:`~repro.hardware.npu.NpuServiceAdapter` (mode names map onto NPU
    ratios).  With the default 32x32/200 MHz config an NPU server is orders
    of magnitude slower than a datacenter GPU on the same model — pass a
    scaled-up :class:`~repro.hardware.npu.NpuConfig` for a merely-slow tier.
    """
    adapter = NpuLatencyModel(config or NpuConfig()).as_service_backend()
    service = ServiceTimeModel(
        model_name, anchor_batches=anchor_batches, latency_model=adapter
    )
    return ServerSpec(
        name=name,
        speed=_measured_speed(service, reference_batch, mode),
        service_model=service,
        device="npu",
        zone=zone,
        rack=rack,
    )


# ----------------------------------------------------------------------
# Failure-domain topology
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClusterTopology:
    """Failure-domain map of a cluster: which servers share fate.

    Built from the specs' ``zone``/``rack`` declarations
    (:meth:`from_specs`).  A server's *domain* is its finest declared
    correlated-failure group: ``"zone:<name>"`` when it has a zone,
    ``"rack:<name>"`` when it only has a rack, and ``"server:<id>"`` when it
    declared neither (an undeclared server is its own island, which keeps
    domain-unaware clusters behaving exactly as before).  The spread placer,
    domain-aware autoscaling and :meth:`~repro.serving.resilience.
    FaultSchedule.expand` all consume this map.
    """

    zone_by_server: Tuple[str, ...]
    rack_by_server: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.zone_by_server) != len(self.rack_by_server):
            raise ValueError("zone and rack maps must cover the same servers")

    @classmethod
    def from_specs(cls, specs: Sequence[ServerSpec]) -> "ClusterTopology":
        return cls(
            zone_by_server=tuple(str(spec.zone) for spec in specs),
            rack_by_server=tuple(str(spec.rack) for spec in specs),
        )

    @property
    def num_servers(self) -> int:
        return len(self.zone_by_server)

    def zone_of(self, server: int) -> str:
        return self.zone_by_server[server]

    def rack_of(self, server: int) -> str:
        return self.rack_by_server[server]

    def domain_of(self, server: int) -> str:
        """The server's finest failure-domain label (always non-empty)."""
        zone = self.zone_by_server[server]
        if zone:
            return f"zone:{zone}"
        rack = self.rack_by_server[server]
        if rack:
            return f"rack:{rack}"
        return f"server:{server}"

    def servers_in_zone(self, name: str) -> List[int]:
        """Member server ids of one zone, ascending (empty if unknown)."""
        return [
            server
            for server, zone in enumerate(self.zone_by_server)
            if zone == str(name)
        ]

    def servers_in_rack(self, name: str) -> List[int]:
        """Member server ids of one rack, ascending (empty if unknown)."""
        return [
            server
            for server, rack in enumerate(self.rack_by_server)
            if rack == str(name)
        ]

    @property
    def zones(self) -> Dict[str, List[int]]:
        """Declared zones and their member servers (insertion order)."""
        groups: Dict[str, List[int]] = {}
        for server, zone in enumerate(self.zone_by_server):
            if zone:
                groups.setdefault(zone, []).append(server)
        return groups

    @property
    def racks(self) -> Dict[str, List[int]]:
        """Declared racks and their member servers (insertion order)."""
        groups: Dict[str, List[int]] = {}
        for server, rack in enumerate(self.rack_by_server):
            if rack:
                groups.setdefault(rack, []).append(server)
        return groups

    @property
    def domains(self) -> Dict[str, List[int]]:
        """Every failure domain and its member servers."""
        groups: Dict[str, List[int]] = {}
        for server in range(self.num_servers):
            groups.setdefault(self.domain_of(server), []).append(server)
        return groups

    @property
    def num_domains(self) -> int:
        return len(self.domains)


# ----------------------------------------------------------------------
# Autoscalers
# ----------------------------------------------------------------------
class Autoscaler(Protocol):
    """Window-boundary elasticity policy.

    Observes one closed control window (cluster-wide stats) and returns the
    number of servers that should be active for the next window; the
    control plane clamps the answer to ``[min_servers, cluster size]`` and
    picks *which* servers to add/remove (fastest-first on scale-up,
    slowest-first on scale-down).

    Stateful autoscalers (hysteresis streaks) should also implement
    ``reset()``; :meth:`ClusterEngine.run` calls it when present so every
    run of the same deterministic workload starts from the same state.
    """

    def decide(self, stats: ClusterWindowStats, active: int) -> int:
        ...


@dataclass
class QueueDepthAutoscaler:
    """Scale on queue depth with hysteresis.

    Scale **up** by ``step`` whenever the window's mean queue depth exceeds
    ``scale_up_depth``.  Scale **down** only after ``patience`` consecutive
    windows below ``scale_down_depth`` — the hysteresis that stops the
    cluster from flapping on a bursty trace.  The asymmetric thresholds
    (up >> down) are the second half of the hysteresis band.
    """

    scale_up_depth: float = 64.0
    scale_down_depth: float = 8.0
    patience: int = 2
    step: int = 1
    _calm_windows: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.scale_down_depth > self.scale_up_depth:
            raise ValueError("scale_down_depth must not exceed scale_up_depth")
        if self.patience < 1 or self.step < 1:
            raise ValueError("patience and step must be >= 1")

    def reset(self) -> None:
        """Clear the hysteresis streak (called by the control plane per run)."""
        self._calm_windows = 0

    def decide(self, stats: ClusterWindowStats, active: int) -> int:
        depth = stats.mean_queue_depth
        if depth > self.scale_up_depth:
            self._calm_windows = 0
            return active + self.step
        if depth < self.scale_down_depth:
            self._calm_windows += 1
            if self._calm_windows >= self.patience:
                self._calm_windows = 0
                return active - self.step
            return active
        self._calm_windows = 0
        return active


@dataclass
class SloLatencyAutoscaler:
    """Scale on a windowed latency-percentile SLO with hysteresis.

    Scale **up** when the window's ``percentile`` response time exceeds
    ``slo_seconds`` — or when the window *dropped* requests: a mass-dropping
    cluster can show healthy served-latency percentiles precisely because
    the queue is being culled, so drops are treated as the strongest breach
    signal.  Scale **down** after ``patience`` consecutive windows in which
    nothing was dropped and the percentile sits below ``slo_seconds *
    headroom`` (spare capacity) — so the cluster sheds servers only when
    the SLO is met with margin.  Windows with no completed responses and no
    drops leave the size unchanged.
    """

    slo_seconds: float
    percentile: float = 99.0
    headroom: float = 0.5
    patience: int = 2
    step: int = 1
    _calm_windows: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.slo_seconds <= 0:
            raise ValueError("slo_seconds must be positive")
        if not 0 < self.headroom <= 1:
            raise ValueError("headroom must be in (0, 1]")
        if self.patience < 1 or self.step < 1:
            raise ValueError("patience and step must be >= 1")

    def reset(self) -> None:
        """Clear the hysteresis streak (called by the control plane per run)."""
        self._calm_windows = 0

    def decide(self, stats: ClusterWindowStats, active: int) -> int:
        if stats.drops > 0:
            self._calm_windows = 0
            return active + self.step
        if stats.latencies.size == 0:
            return active
        observed = stats.latency_percentile(self.percentile)
        if observed > self.slo_seconds:
            self._calm_windows = 0
            return active + self.step
        if observed < self.slo_seconds * self.headroom:
            self._calm_windows += 1
            if self._calm_windows >= self.patience:
                self._calm_windows = 0
                return active - self.step
            return active
        self._calm_windows = 0
        return active


@dataclass
class PredictiveFaultAutoscaler:
    """Provision *ahead of* predicted degradation from telemetry trends.

    The reactive autoscalers wait for a breach — a blown percentile or a
    dropped request — which under a fault means a whole SLO window of damage
    is already done before capacity moves.  This policy watches the same
    per-server served-per-busy-second signal
    :class:`~repro.serving.placement.PredictivePlacer` forecasts with: it
    keeps an EWMA of each server's measured rate and scales **up** the
    moment a server's newest windowed rate *collapses* below
    ``collapse_ratio`` of its forecast (a slowdown fault, thermal throttle
    or failing link shows up there one window after onset, typically before
    the cluster percentile breaks).  The breach signals of
    :class:`SloLatencyAutoscaler` (drops, then the windowed ``percentile``
    against ``slo_seconds``) remain as the reactive backstop, and scale-down
    keeps the same hysteresis (``patience`` calm windows under
    ``slo_seconds * headroom``).

    The control plane hands the policy its
    :class:`~repro.serving.telemetry.TelemetryBus` through :meth:`attach`
    (called by :meth:`ClusterEngine.run`); without a bus the policy degrades
    to the reactive behaviour.  When a collapse triggered the decision,
    ``last_reason`` names the collapsed servers and the control plane
    appends it to the scale event's audit line.
    """

    slo_seconds: float
    collapse_ratio: float = 0.6
    alpha: float = 0.5
    percentile: float = 99.0
    headroom: float = 0.5
    patience: int = 2
    step: int = 1
    _calm_windows: int = field(default=0, init=False, repr=False)
    _ewma: Dict[int, float] = field(default_factory=dict, init=False, repr=False)
    _telemetry: Optional[TelemetryBus] = field(
        default=None, init=False, repr=False
    )
    _pending_alerts: List[object] = field(
        default_factory=list, init=False, repr=False
    )
    last_reason: str = field(default="", init=False, repr=False)

    def __post_init__(self) -> None:
        if self.slo_seconds <= 0:
            raise ValueError("slo_seconds must be positive")
        if not 0 < self.collapse_ratio < 1:
            raise ValueError("collapse_ratio must be in (0, 1)")
        if not 0 < self.alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if not 0 < self.headroom <= 1:
            raise ValueError("headroom must be in (0, 1]")
        if self.patience < 1 or self.step < 1:
            raise ValueError("patience and step must be >= 1")

    def attach(self, telemetry: TelemetryBus) -> None:
        """Receive the cluster's telemetry bus (control-plane hook)."""
        self._telemetry = telemetry

    def reset(self) -> None:
        """Clear forecasts and hysteresis (called by the control plane per run)."""
        self._calm_windows = 0
        self._ewma.clear()
        self._pending_alerts.clear()
        self.last_reason = ""

    def observe_alerts(self, alerts: Sequence[object]) -> None:
        """Receive freshly fired SLO burn-rate alerts (control-plane hook).

        Page-severity alerts (:class:`repro.obs.slo.AlertEvent`, duck-typed)
        queue as a scale-up trigger consumed by the next :meth:`decide` —
        the burn-rate signal sees a budget-torching incident across the
        whole error budget, which the single-window percentile check can
        miss when each window is individually borderline.  Never called on
        clusters without an SLO monitor, leaving behaviour unchanged.
        """
        self._pending_alerts.extend(
            alert for alert in alerts
            if getattr(alert, "severity", "page") == "page"
        )

    def _collapsed_servers(self, window: int) -> List[int]:
        """Fold the window into the forecasts; return servers that collapsed."""
        bus = self._telemetry
        collapsed: List[int] = []
        if bus is None or window < 0:
            return collapsed
        for server in range(bus.num_servers):
            rate = bus.measured_rate(server, window)
            if rate != rate:  # idle window carries no capacity signal
                continue
            forecast = self._ewma.get(server)
            if forecast is not None and rate < self.collapse_ratio * forecast:
                collapsed.append(server)
            # The degraded rate still folds in (slowly, via the EWMA): the
            # policy must also notice when the server *recovers*.
            self._ewma[server] = (
                rate
                if forecast is None
                else self.alpha * rate + (1 - self.alpha) * forecast
            )
        return collapsed

    def decide(self, stats: ClusterWindowStats, active: int) -> int:
        self.last_reason = ""
        if self._pending_alerts:
            alert = self._pending_alerts[0]
            self._pending_alerts.clear()
            self._calm_windows = 0
            # Fold the window into the forecasts even when the alert
            # preempts the collapse check: recovery tracking must not stall.
            self._collapsed_servers(stats.window)
            self.last_reason = (
                "slo burn-rate alert: "
                f"{getattr(alert, 'objective', 'objective')} burning at "
                f"{getattr(alert, 'burn_fast', 0.0):.1f}x budget"
            )
            return active + self.step
        collapsed = self._collapsed_servers(stats.window)
        if collapsed:
            self._calm_windows = 0
            self.last_reason = (
                "predicted degradation: served-per-busy-second collapsed on "
                f"server(s) {collapsed}"
            )
            return active + self.step
        if stats.drops > 0:
            self._calm_windows = 0
            return active + self.step
        if stats.latencies.size == 0:
            return active
        observed = stats.latency_percentile(self.percentile)
        if observed > self.slo_seconds:
            self._calm_windows = 0
            return active + self.step
        if observed < self.slo_seconds * self.headroom:
            self._calm_windows += 1
            if self._calm_windows >= self.patience:
                self._calm_windows = 0
                return active - self.step
            return active
        self._calm_windows = 0
        return active


# ----------------------------------------------------------------------
# Control plane
# ----------------------------------------------------------------------
@dataclass
class ClusterResult:
    """Outcome of one cluster run: engine result + telemetry + events.

    ``scale_events`` are the run's elasticity decisions, ``fault_events``
    the fault injections the control plane applied (empty without a fault
    schedule).
    """

    result: EngineResult
    telemetry: TelemetryBus
    scale_events: List[ScaleEvent]
    specs: List[ServerSpec]
    initial_active: int = 0
    fault_events: List[FaultEvent] = field(default_factory=list)
    alert_events: List[object] = field(default_factory=list)

    @property
    def migrated(self) -> int:
        """Requests moved off failed/deactivated servers and re-served."""
        return self.result.migrated

    @property
    def promotions(self) -> List[ScaleEvent]:
        """Warm-spare activations (scale events with action ``"promote"``)."""
        return [event for event in self.scale_events if event.action == "promote"]

    def timeline(self) -> List[object]:
        """Scale, fault *and* alert events merged in deterministic time order."""
        return self.telemetry.timeline()

    def to_json(self) -> Dict[str, object]:
        """JSON-ready report: engine aggregates + control-plane events."""
        return {
            "engine": self.result.to_json(),
            "initial_active": int(self.initial_active),
            "peak_active": int(self.peak_active),
            "server_names": [spec.name for spec in self.specs],
            "scale_events": [
                {
                    "time": float(event.time),
                    "action": event.action,
                    "server": int(event.server),
                    "active_after": int(event.active_after),
                    "reason": event.reason,
                }
                for event in self.scale_events
            ],
            "fault_events": [
                {
                    "time": float(event.time),
                    "server": int(event.server),
                    "kind": event.kind,
                    "domain": event.domain,
                }
                for event in self.fault_events
            ],
            "alert_events": [
                {
                    "time": float(event.time),
                    "objective": event.objective,
                    "severity": event.severity,
                    "burn_fast": float(event.burn_fast),
                    "burn_slow": float(event.burn_slow),
                    "threshold": float(event.threshold),
                    "window": int(event.window),
                }
                for event in self.alert_events
            ],
        }

    def deadline_attainment(self) -> float:
        """Fraction of deadline-carrying requests that met their deadline."""
        return self.result.deadline_attainment()

    @property
    def latencies(self) -> np.ndarray:
        return self.result.latencies

    @property
    def throughput(self) -> float:
        return self.result.throughput

    def latency_percentile(self, percentile: float) -> float:
        return latency_percentile(self.latencies, percentile)

    @property
    def p99_latency(self) -> float:
        return self.latency_percentile(99)

    def slo_attainment(self, slo_seconds: float) -> float:
        """Fraction of admitted requests served within a response-time SLO.

        Dropped requests count as misses (their latency slot is ``nan``).
        """
        return attainment_within(self.result.request_latencies, slo_seconds)

    @property
    def server_seconds(self) -> float:
        """Accumulated busy seconds across servers (the run's compute bill)."""
        return self.result.busy_time

    @property
    def peak_active(self) -> int:
        """Largest active-set size reached during the run."""
        return max(
            [self.initial_active]
            + [event.active_after for event in self.scale_events]
        )

    def active_timeline(self) -> List[Dict[str, float]]:
        """``[{"time", "active"}...]`` — cluster size over the run."""
        return [{"time": 0.0, "active": float(self.initial_active)}] + [
            {"time": event.time, "active": float(event.active_after)}
            for event in self.scale_events
        ]


_PLACERS = ("free_clock", "least_work", "weighted", "predictive", "spread")


class ClusterEngine:
    """Heterogeneous serving cluster with telemetry, autoscaling and faults.

    ``specs`` define the servers (order = server ids; put fast servers
    first so tie-breaks favour them).  ``placer`` is a
    :class:`~repro.serving.placement.Placer` instance or one of
    ``"free_clock"``, ``"least_work"``, ``"weighted"``, ``"predictive"``
    (speeds *and* batch-size-aware service estimators taken from the
    specs); ``None`` keeps the engine's inlined seed dispatch.

    With an ``autoscaler`` the run starts at ``initial_servers`` active
    (default ``min_servers``) and re-evaluates the size at every telemetry
    window boundary; newly activated servers become available
    ``startup_delay`` seconds after the decision (provisioning lag).
    Scale-up activates the fastest parked *healthy* server, scale-down
    parks the slowest active one, and every decision lands in the telemetry
    timeline.  Under a :class:`~repro.serving.placement.ModelAffinityPlacer`
    scale-down additionally respects per-model floors: a model's last
    active affine server is never parked (override the default floor of one
    per affinity model with ``model_floors``).

    A ``fault_schedule`` (:class:`~repro.serving.resilience.FaultSchedule`)
    injects crashes, slowdowns and recoveries at window boundaries; a
    ``migration`` policy (:class:`~repro.serving.resilience.
    MigrationPolicy`) decides what happens to the work a crashed — or, with
    migration configured, autoscaler-deactivated — server leaves behind.
    Domain-scoped schedule events are expanded against the cluster's
    :class:`ClusterTopology` at construction.  A ``checkpoint`` policy
    (:class:`~repro.serving.resilience.CheckpointPolicy`) lets preempted
    batches keep their checkpointed progress, so migrated victims resume
    with residual demand.  ``warm_spares``
    (:class:`~repro.serving.resilience.WarmSparePool`) reserves the named
    specs as standbys: they start parked, ordinary scale-up skips them, and
    a crash of an active server promotes one with the pool's
    ``promotion_latency`` instead of the cold ``startup_delay``.
    ``min_domains`` makes scale-down refuse to shrink the active set (and
    each affinity model's active set) below that many failure domains.
    Without a migration policy a crash drops its victims (lost work);
    without a fault schedule this class behaves exactly as before.
    """

    def __init__(
        self,
        specs: Sequence[ServerSpec],
        batching: Optional[BatchingConfig] = None,
        scheduler: Optional[Scheduler] = None,
        placer: Union[Placer, str, None] = None,
        window: float = 1.0,
        autoscaler: Optional[Autoscaler] = None,
        min_servers: int = 1,
        initial_servers: Optional[int] = None,
        startup_delay: float = 0.0,
        fault_schedule: Optional[FaultSchedule] = None,
        migration: Optional[MigrationPolicy] = None,
        model_floors: Optional[Dict[str, int]] = None,
        warm_spares: Optional[WarmSparePool] = None,
        min_domains: Optional[int] = None,
        checkpoint: Optional[CheckpointPolicy] = None,
        columnar: bool = True,
        tracer=None,
        slo_monitor=None,
    ) -> None:
        if not specs:
            raise ValueError("a cluster needs at least one ServerSpec")
        self.specs = list(specs)
        self.topology = ClusterTopology.from_specs(self.specs)
        self.autoscaler = autoscaler
        self.warm_spares = warm_spares
        self._spare_ids: Set[int] = (
            set(warm_spares.spares) if warm_spares is not None else set()
        )
        if self._spare_ids:
            out_of_range = [s for s in self._spare_ids if s >= len(self.specs)]
            if out_of_range:
                raise ValueError(
                    f"warm spare pool names server(s) {sorted(out_of_range)}, "
                    f"but the cluster has {len(self.specs)} servers"
                )
            if len(self._spare_ids) >= len(self.specs):
                raise ValueError("warm spares cannot cover every server")
        self._primaries = [
            s for s in range(len(self.specs)) if s not in self._spare_ids
        ]
        self._promoted: Set[int] = set()
        self.min_domains = None if min_domains is None else int(min_domains)
        if self.min_domains is not None and self.min_domains < 1:
            raise ValueError("min_domains must be >= 1")
        self.checkpoint = checkpoint
        self.min_servers = int(min_servers)
        if not 1 <= self.min_servers <= len(self.specs):
            raise ValueError("min_servers must be in [1, len(specs)]")
        self.initial_servers = (
            self.min_servers if initial_servers is None else int(initial_servers)
        )
        if not self.min_servers <= self.initial_servers <= len(self.specs):
            raise ValueError("initial_servers must be in [min_servers, len(specs)]")
        self.startup_delay = float(startup_delay)
        if self.startup_delay < 0:
            raise ValueError("startup_delay must be >= 0")
        if fault_schedule is not None and fault_schedule.has_domain_events:
            # Domain events resolve against *this* cluster's topology; the
            # expanded (fully server-scoped) schedule is what the run cursor
            # walks, each event tagged with its correlated-origin domain.
            fault_schedule = fault_schedule.expand(self.topology)
        self.fault_schedule = fault_schedule
        if fault_schedule is not None:
            for event in fault_schedule:
                if event.server >= len(self.specs):
                    raise ValueError(
                        f"fault schedule names server {event.server}, but the "
                        f"cluster has {len(self.specs)} servers"
                    )
        self.migration = migration
        self.model_floors = dict(model_floors) if model_floors is not None else None
        # Per-run fault calendar (FAULT events in schedule order); rebuilt by
        # run() so one immutable schedule drives any number of replays.
        self._fault_calendar: Optional[EventCalendar] = None
        # Per-server degradable executor wrappers (slowdown faults): one
        # list per server, one wrapper per registered model on it.  Only
        # populated when a fault schedule exists, so the default path keeps
        # the executors untouched.
        self._degraders: Optional[List[List[DegradableExecutor]]] = (
            [[] for _ in self.specs] if fault_schedule is not None else None
        )
        # Execution modes seen at register() time; batch_estimators resolves
        # its scoring mode from them lazily (placers are built before
        # registration happens).
        self._registered_modes: set = set()
        # Opt-in observability (duck-typed; see repro.obs): a request
        # tracer threaded into the engine, and an SLO burn-rate monitor
        # evaluated at window boundaries.
        self.tracer = tracer
        self.slo_monitor = slo_monitor
        self.telemetry = TelemetryBus(window=window, num_servers=len(self.specs))
        self.engine = ServingEngine(
            batching=batching,
            num_servers=len(self.specs),
            scheduler=scheduler,
            placer=self.resolve_placer(placer),
            telemetry=self.telemetry,
            columnar=columnar,
            tracer=tracer,
        )
        if self.model_floors is not None:
            # Floors only act through affinity scale-down; accepting them
            # anywhere else would silently configure nothing.
            affinity = self._affinity_placer()
            if affinity is None:
                raise ValueError(
                    "model_floors requires a ModelAffinityPlacer (floors act "
                    "on a model's affine server set)"
                )
            unknown = set(self.model_floors) - set(affinity.affinity)
            if unknown:
                raise ValueError(
                    "model_floors names models absent from the affinity map: "
                    f"{sorted(unknown)}"
                )

    @property
    def speeds(self) -> List[float]:
        return [spec.speed for spec in self.specs]

    def batch_estimators(
        self, mode: Optional[str] = None
    ) -> List[ServiceEstimator]:
        """Per-server batch-size-aware service-time estimators.

        One callable per spec mapping a batch size to estimated service
        seconds via the spec's own latency backend (falling back to the
        scalar speed for executor-only specs) — what the named speed-aware
        placers score with instead of the reference-batch scalar.  With
        ``mode=None`` the execution mode is resolved *lazily* per call: the
        mode the cluster's endpoints registered when they all agree, else
        the ``"int8"`` reference (the same convention the spec speeds are
        measured at) — so a named placer resolved before :meth:`register`
        still estimates the precision that actually runs.
        """
        return [
            lambda batch, spec=spec: spec.estimate_batch_seconds(
                batch, mode=mode if mode is not None else self._estimator_mode
            )
            for spec in self.specs
        ]

    @property
    def _estimator_mode(self) -> str:
        if len(self._registered_modes) == 1:
            return next(iter(self._registered_modes))
        return "int8"

    def resolve_placer(self, placer: Union[Placer, str, None]) -> Optional[Placer]:
        if placer is None:
            return None
        if isinstance(placer, str):
            if placer == "free_clock":
                return FreeClockPlacer()
            if placer == "least_work":
                return LeastOutstandingWorkPlacer(
                    self.speeds, estimators=self.batch_estimators()
                )
            if placer == "weighted":
                return WeightedSpeedPlacer(
                    self.speeds, estimators=self.batch_estimators()
                )
            if placer == "predictive":
                return PredictivePlacer(
                    self.speeds, estimators=self.batch_estimators()
                )
            if placer == "spread":
                return SpreadPlacer(
                    self.topology,
                    within=WeightedSpeedPlacer(
                        self.speeds, estimators=self.batch_estimators()
                    ),
                )
            raise ValueError(
                f"unknown placer {placer!r}; named placers: {', '.join(_PLACERS)}"
            )
        return placer

    def affinity_placer(
        self, affinity: Dict[str, Sequence[int]], within: Union[Placer, str, None] = None
    ) -> ModelAffinityPlacer:
        """Partitioned placement over this cluster's servers."""
        inner = self.resolve_placer(within)
        return ModelAffinityPlacer(
            affinity, within=inner if inner is not None else FreeClockPlacer()
        )

    def spread_placer(
        self,
        within: Union[Placer, str, None] = None,
        max_domain_share: Optional[float] = None,
    ) -> SpreadPlacer:
        """Spread-aware wrapper over this cluster's topology.

        Any named or instance placer becomes domain-aware: ``within``
        decides inside the least-backlogged failure domain (see
        :class:`~repro.serving.placement.SpreadPlacer`).
        """
        return SpreadPlacer(
            self.topology,
            within=self.resolve_placer(within),
            max_domain_share=max_domain_share,
        )

    def _affinity_placer(self) -> Optional[ModelAffinityPlacer]:
        """The cluster's affinity placer, unwrapping one spread layer."""
        placer = self.engine.placer
        if isinstance(placer, SpreadPlacer):
            placer = placer.within
        return placer if isinstance(placer, ModelAffinityPlacer) else None

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        policy: Optional[RatioPolicy] = None,
        mode: str = "flexiq",
        executors: Optional[Sequence[Executor]] = None,
    ) -> None:
        """Register a model across the cluster (one executor per server).

        By default each server executes through its own spec's backend
        (heterogeneous service times); pass ``executors`` to override, e.g.
        with per-server :class:`~repro.serving.executors.RuntimeExecutor`
        instances owning real prepared-kernel caches.  With a fault
        schedule every executor is wrapped in a
        :class:`~repro.serving.resilience.DegradableExecutor` so slowdown
        faults can stretch the server's service times at run time.
        """
        self._registered_modes.add(mode)
        if executors is None:
            executors = [spec.build_executor() for spec in self.specs]
        executors = list(executors)
        if self._degraders is not None:
            if len(executors) != len(self.specs):
                raise ValueError(
                    f"got {len(executors)} executors for {len(self.specs)} servers"
                )
            executors = [DegradableExecutor(executor) for executor in executors]
            for server, wrapper in enumerate(executors):
                wrapper.factor = self.specs[server].slow_factor
                self._degraders[server].append(wrapper)
        self.engine.register(name, executors, policy=policy, mode=mode)

    # ------------------------------------------------------------------
    # Driving a run
    # ------------------------------------------------------------------
    def run(
        self,
        trace: Optional[RequestTrace] = None,
        requests: Optional[Sequence[Request]] = None,
        model: Optional[str] = None,
        duration: Optional[float] = None,
        record_responses: Optional[bool] = None,
    ) -> ClusterResult:
        """Serve a trace/request list under the control plane.

        Identical surface to :meth:`ServingEngine.run`; between batches the
        control loop closes telemetry windows, applies due fault injections
        and applies autoscaler decisions.  Without an autoscaler and fault
        schedule this is exactly an engine run plus telemetry.
        """
        if (trace is None) == (requests is None):
            raise ValueError("provide exactly one of trace or requests")
        self.telemetry.reset()
        if self.tracer is not None and hasattr(self.tracer, "reset"):
            self.tracer.reset()
        if self.slo_monitor is not None:
            self.slo_monitor.reset()
        if self.autoscaler is not None:
            if hasattr(self.autoscaler, "attach"):
                # Telemetry-driven policies (PredictiveFaultAutoscaler) read
                # per-server windows straight off the bus.
                self.autoscaler.attach(self.telemetry)
            if hasattr(self.autoscaler, "reset"):
                self.autoscaler.reset()
        self._fault_calendar = (
            self.fault_schedule.as_events()
            if self.fault_schedule is not None
            else None
        )
        self._promoted.clear()
        if self.fault_schedule is not None:
            # Deterministic repeat runs: faults re-play from a clean slate.
            for spec in self.specs:
                spec.recover()
            for wrappers in self._degraders:
                for wrapper in wrappers:
                    wrapper.factor = 1.0
        self.engine.start(
            trace=trace,
            requests=requests,
            model=model,
            duration=duration,
            record_responses=record_responses,
        )
        if self.autoscaler is not None:
            self.engine.set_active_servers(self._primaries[: self.initial_servers])
        elif self._spare_ids:
            # Spares start parked even without an autoscaler: crash-driven
            # promotion is the only thing that activates them.
            self.engine.set_active_servers(self._primaries)
        control = (
            self.autoscaler is not None
            or self.fault_schedule is not None
            # An SLO monitor needs window boundaries even when nothing
            # scales or faults: its burn rates read the closed windows.
            or self.slo_monitor is not None
        )
        boundaries = EventCalendar()
        if control:
            boundaries.schedule(self.telemetry.window, WINDOW_BOUNDARY, 0)
        try:
            if not control:
                # No window-boundary decisions to make: hand the whole
                # session straight to finish(), which drains eligible FIFO
                # sessions through the engine's columnar fast core —
                # stepping batch-by-batch here would only re-create the
                # object loop the core replaces.
                result = self.engine.finish()
            else:
                while True:
                    record = self.engine.step()
                    if record is None:
                        if self._fault_calendar:
                            # Trailing faults: events after the last batch
                            # start (a server crashed in the final window)
                            # must still land.  Apply ONE event, then
                            # re-enter the step loop: a crash may requeue
                            # migrants whose batches a *later* event should
                            # see in flight — draining the whole calendar
                            # here would apply future faults before the work
                            # they are meant to disturb exists.
                            event = self._fault_calendar.pop().payload
                            boundary = (
                                self.telemetry.window_index(event.time) + 1
                            ) * self.telemetry.window
                            self._apply_fault(event, boundary)
                            continue
                        break
                    # Close every window boundary the clock has passed.
                    # Batch start times are not strictly monotone across
                    # servers, so a boundary closes when *some* batch starts
                    # beyond it; stragglers still land in their own
                    # (already-closed) window's telemetry cell, only the
                    # scaling decision sees them late.  Each WINDOW_BOUNDARY
                    # event reschedules its successor, so the calendar holds
                    # one pending boundary at a time.
                    while record.start >= boundaries.peek_time():
                        due = boundaries.pop()
                        self._close_window(due.payload, due.time)
                        boundaries.schedule(
                            (due.payload + 2) * self.telemetry.window,
                            WINDOW_BOUNDARY,
                            due.payload + 1,
                        )
                result = self.engine.finish()
        except BaseException:
            # A mid-run failure (an unsurvivable crash fault, a rogue
            # placer) must not leave the session open: abort so the same
            # ClusterEngine can run() again — run() re-resets fault state.
            self.engine.abort()
            raise
        return ClusterResult(
            result=result,
            telemetry=self.telemetry,
            scale_events=list(self.telemetry.scale_events),
            specs=self.specs,
            initial_active=(
                min(self.initial_servers, len(self._primaries))
                if self.autoscaler is not None
                else len(self._primaries)
            ),
            fault_events=list(self.telemetry.fault_events),
            alert_events=list(self.telemetry.alert_events),
        )

    def _close_window(self, window: int, boundary: float) -> None:
        """Apply due faults, evaluate SLO burn, then one autoscaling decision.

        Faults pop off the per-run calendar strictly *before* the boundary —
        a fault strikes mid-window but lands when the window closes, so the
        calendar is consumed here rather than merged with the boundary
        events (a merged heap would fire faults at their own timestamps,
        mid-window, which is not the model).  The SLO monitor reads the
        just-closed window next (alerts land on the timeline beside the
        faults that caused them), and the autoscaler decides last — with
        any fresh alerts already visible as an input signal.
        """
        if self._fault_calendar is not None:
            while self._fault_calendar.peek_time() < boundary:
                self._apply_fault(self._fault_calendar.pop().payload, boundary)
        if self.slo_monitor is not None:
            alerts = self.slo_monitor.evaluate(
                self.telemetry, window, self.engine.active_servers
            )
            for alert in alerts:
                self.telemetry.record_alert_event(alert)
            if alerts and self.autoscaler is not None and hasattr(
                self.autoscaler, "observe_alerts"
            ):
                self.autoscaler.observe_alerts(alerts)
        if self.autoscaler is not None:
            self._autoscale(window, boundary)

    def _apply_fault(self, event: FaultEvent, boundary: float) -> None:
        """Apply one fault event (the autoscaler sees the post-fault world)."""
        spec = self.specs[event.server]
        active = self.engine.active_servers
        if event.kind == "crash":
            if self.warm_spares is not None and event.server in active:
                if self._promote_spare(event.server, boundary):
                    active = self.engine.active_servers
            if event.server in active and len(active) == 1:
                # Losing the sole active server is survivable when a
                # healthy spare is parked: wake the fastest one (with the
                # usual provisioning lag) before the crash lands, recorded
                # as a scale event so the emergency is auditable.
                spares = sorted(
                    (
                        s
                        for s in range(len(self.specs))
                        if s not in active
                        and s != event.server
                        and self.specs[s].available
                    ),
                    key=lambda s: (-self.specs[s].speed, s),
                )
                if not spares:
                    raise RuntimeError(
                        f"server {event.server} ({spec.name}) is the last "
                        "active server and no healthy spare is parked; the "
                        "cluster cannot survive losing it"
                    )
                replacement = spares[0]
                active = sorted(active + [replacement])
                self.engine.set_active_servers(
                    active, available_from=boundary + self.startup_delay
                )
                self.telemetry.record_scale_event(
                    ScaleEvent(
                        time=boundary,
                        action="add",
                        server=replacement,
                        active_after=len(active),
                        reason=(
                            f"emergency replacement for crashed server "
                            f"{event.server}"
                        ),
                    )
                )
            # Preempt even a parked server: it may still be draining a batch
            # a graceful deactivation let finish.
            self.engine.preempt_server(
                event.server,
                event.time,
                policy=self.migration,
                kill_running=True,
                checkpoint=self.checkpoint,
            )
            if event.server in active:
                self.engine.set_active_servers(
                    [server for server in active if server != event.server]
                )
            spec.fail()
        elif event.kind == "slowdown":
            # A slowdown against a crashed server must not resurrect it
            # (degrade() would flip health to "degraded" and the autoscaler
            # would wake it); the event is recorded but changes nothing
            # until the recovery fault lands.
            if spec.health != "failed":
                spec.degrade(event.factor)
                for wrapper in self._degraders[event.server]:
                    wrapper.factor = float(event.factor)
        else:  # recover
            was_failed = spec.health == "failed"
            spec.recover()
            for wrapper in self._degraders[event.server]:
                wrapper.factor = 1.0
            # Without an autoscaler nobody else would re-admit the server;
            # with one, it simply becomes eligible for the next scale-up.
            if was_failed and self.autoscaler is None and event.server not in active:
                self.engine.set_active_servers(
                    sorted(active + [event.server]), available_from=boundary
                )
                if self._promoted and event.server not in self._spare_ids:
                    # The recovered primary replaces a promoted spare, which
                    # drains gracefully back to reserve — capacity stays flat
                    # instead of compounding.
                    self._demote_spare(boundary)
        self.telemetry.record_fault_event(event)

    def _promote_spare(self, crashed: int, boundary: float) -> bool:
        """Activate a healthy reserve spare for a crashed server.

        Promotion is topology-aware: spares *outside* the crashed server's
        failure domain are preferred (a spare sharing the failed zone is one
        power/network event from dying with its promotion), tie-broken by
        speed, then id.  Promotion bypasses the cold ``startup_delay``: the
        spare's executor state is pre-replicated, so it becomes serviceable
        after only the pool's ``promotion_latency``.  Returns False when the
        reserve is exhausted (every spare promoted, crashed or already
        active) — the ordinary emergency path then takes over.
        """
        active = self.engine.active_servers
        failed_domain = self.topology.domain_of(crashed)
        candidates = sorted(
            (
                s
                for s in self._spare_ids
                if s not in self._promoted
                and s not in active
                and s != crashed
                and self.specs[s].available
            ),
            key=lambda s: (
                self.topology.domain_of(s) == failed_domain,
                -self.specs[s].speed,
                s,
            ),
        )
        if not candidates:
            return False
        spare = candidates[0]
        new_active = sorted(active + [spare])
        self.engine.set_active_servers(
            new_active,
            available_from=boundary + self.warm_spares.promotion_latency,
        )
        self._promoted.add(spare)
        self.telemetry.record_scale_event(
            ScaleEvent(
                time=boundary,
                action="promote",
                server=spare,
                active_after=len(new_active),
                reason=(
                    f"warm spare for crashed server {crashed} "
                    f"[{self.topology.domain_of(crashed)}]"
                ),
            )
        )
        return True

    def _demote_spare(self, boundary: float) -> None:
        """Return the slowest promoted spare to the reserve pool."""
        active = self.engine.active_servers
        candidates = sorted(
            (s for s in self._promoted if s in active),
            key=lambda s: (self.specs[s].speed, s),
        )
        if not candidates:
            return
        spare = candidates[0]
        new_active = [s for s in active if s != spare]
        self.engine.set_active_servers(new_active)
        if self.migration is not None:
            # Graceful drain: dispatched-but-unstarted work re-places
            # elsewhere instead of waiting out the spare's backlog.
            self.engine.preempt_server(
                spare,
                boundary,
                policy=self.migration,
                kill_running=False,
                checkpoint=self.checkpoint,
            )
        self._promoted.discard(spare)
        self.telemetry.record_scale_event(
            ScaleEvent(
                time=boundary,
                action="demote",
                server=spare,
                active_after=len(new_active),
                reason="primary recovered; spare returns to reserve",
            )
        )

    def _floor_blocked(self, server: int, remaining: set) -> bool:
        """Would parking ``server`` drop a model below its affinity floor?

        Floors default to one active server per model named in a
        :class:`~repro.serving.placement.ModelAffinityPlacer`'s map (so an
        autoscaler can never scale a model's last server to zero);
        ``model_floors`` overrides per model.
        """
        placer = self._affinity_placer()
        if placer is None:
            return False
        floors = (
            self.model_floors
            if self.model_floors is not None
            else {model: 1 for model in placer.affinity}
        )
        for model, allowed in placer.affinity.items():
            floor = floors.get(model, 1)
            if server in allowed:
                left = sum(
                    1 for other in remaining if other in allowed and other != server
                )
                if left < floor:
                    return True
        return False

    def _domain_blocked(self, server: int, remaining: set) -> bool:
        """Would parking ``server`` drop failure-domain diversity too low?

        With ``min_domains`` set, scale-down keeps the active set — and each
        affinity model's active subset — spread over at least that many
        failure domains (clamped to however many domains actually exist), so
        the autoscaler can never concentrate a model into one zone.
        """
        if self.min_domains is None:
            return False
        topology = self.topology
        left = {
            topology.domain_of(other) for other in remaining if other != server
        }
        if len(left) < min(self.min_domains, topology.num_domains):
            return True
        placer = self._affinity_placer()
        if placer is not None:
            for allowed in placer.affinity.values():
                if server not in allowed:
                    continue
                model_left = {
                    topology.domain_of(other)
                    for other in remaining
                    if other in allowed and other != server
                }
                model_total = {topology.domain_of(s) for s in allowed}
                if len(model_left) < min(self.min_domains, len(model_total)):
                    return True
        return False

    def _autoscale(self, window: int, boundary: float) -> None:
        """Apply one autoscaling decision at a window boundary."""
        active = self.engine.active_servers
        stats = self.telemetry.cluster_window(window, active_servers=active)
        target = int(self.autoscaler.decide(stats, len(active)))
        target = max(self.min_servers, min(target, len(self.specs)))
        if target == len(active):
            return
        # Signal-neutral audit line: the window's load picture, not a guess
        # at which signal the autoscaler keyed on.
        p99 = (
            f"{stats.latency_percentile(99) * 1e3:.0f}ms"
            if stats.latencies.size
            else "n/a"
        )
        reason = (
            f"window {window}: depth={stats.mean_queue_depth:.1f}, "
            f"p99={p99}, drops={stats.drops}"
        )
        predicted = getattr(self.autoscaler, "last_reason", "")
        if predicted:
            reason = f"{reason}; {predicted}"
        order = sorted(
            range(len(self.specs)), key=lambda s: (-self.specs[s].speed, s)
        )
        if target > len(active):
            # Only healthy servers can be woken: a crashed one stays parked
            # until its recovery fault flips it back.  Reserve warm spares
            # stay parked for crash promotion — ordinary load never eats
            # the crash budget.
            parked = [
                s
                for s in order
                if s not in active
                and self.specs[s].available
                and (s not in self._spare_ids or s in self._promoted)
            ]
            if self.min_domains is not None:
                # Prefer waking under-represented domains, so scale-up
                # rebuilds diversity before it adds depth.
                presence = {
                    domain: 0 for domain in self.topology.domains
                }
                for s in active:
                    presence[self.topology.domain_of(s)] += 1
                parked.sort(
                    key=lambda s: presence[self.topology.domain_of(s)]
                )
            added = parked[: target - len(active)]
            if not added:
                return
            new_active = sorted(active + added)
            self.engine.set_active_servers(
                new_active, available_from=boundary + self.startup_delay
            )
            for server in added:
                self.telemetry.record_scale_event(
                    ScaleEvent(
                        time=boundary,
                        action="add",
                        server=server,
                        active_after=len(new_active),
                        reason=reason,
                    )
                )
        else:
            removable = [s for s in reversed(order) if s in active]
            removed: List[int] = []
            remaining = set(active)
            for server in removable:
                if len(removed) == len(active) - target:
                    break
                if self._floor_blocked(server, remaining):
                    continue
                if self._domain_blocked(server, remaining):
                    continue
                removed.append(server)
                remaining.discard(server)
            if not removed:
                return
            new_active = sorted(s for s in active if s not in removed)
            self.engine.set_active_servers(new_active)
            for server in removed:
                # With a migration policy, work already pinned to the parked
                # server (dispatched but not started) restarts elsewhere
                # instead of waiting out the drain.
                if self.migration is not None:
                    self.engine.preempt_server(
                        server,
                        boundary,
                        policy=self.migration,
                        kill_running=False,
                        checkpoint=self.checkpoint,
                    )
                self.telemetry.record_scale_event(
                    ScaleEvent(
                        time=boundary,
                        action="remove",
                        server=server,
                        active_after=len(new_active),
                        reason=reason,
                    )
                )

"""Adaptive serving: FlexiQ's dynamic 4-bit ratio control under load (Fig. 9).

The simulator divides time into control windows; at every window boundary the
:class:`~repro.core.controller.AdaptiveRatioController` observes the request
rate of the previous window and picks the 4-bit ratio for the next one.  The
resulting latency distribution is compared against fixed INT8 and INT4
deployments, and the effective accuracy is the ratio-weighted average of the
per-ratio accuracies measured offline (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.controller import AdaptiveRatioController, LatencyProfile
from repro.data.traces import RequestTrace
from repro.serving.metrics import summarize_latencies
from repro.serving.simulator import BatchingConfig, ServiceTimeModel, ServingSimulator


@dataclass
class AdaptiveServingResult:
    """Outcome of an adaptive serving simulation."""

    latencies: np.ndarray
    ratio_timeline: List[Dict[str, float]]   # window start, observed rate, ratio
    average_ratio: float
    effective_accuracy: Optional[float]
    duration: float

    def summary(self) -> Dict[str, float]:
        return summarize_latencies(self.latencies)

    @property
    def median_latency(self) -> float:
        return float(np.percentile(self.latencies, 50)) if self.latencies.size else float("nan")


class AdaptiveServingSimulator:
    """Serving simulator driven by the FlexiQ ratio controller."""

    def __init__(
        self,
        service_model: ServiceTimeModel,
        controller: AdaptiveRatioController,
        batching: BatchingConfig = BatchingConfig(),
        control_window: float = 1.0,
    ) -> None:
        self.service_model = service_model
        self.controller = controller
        self.batching = batching
        self.control_window = float(control_window)

    def run(
        self,
        trace: RequestTrace,
        accuracy_by_ratio: Optional[Dict[float, float]] = None,
    ) -> AdaptiveServingResult:
        """Simulate the trace with per-window ratio adaptation.

        ``accuracy_by_ratio`` (e.g. the Table 2 sweep) lets the result report
        the time-averaged effective accuracy of the adaptive deployment.
        """
        num_windows = int(np.ceil(trace.duration / self.control_window))
        window_ratios = np.zeros(num_windows, dtype=np.float64)
        timeline: List[Dict[str, float]] = []

        for window in range(num_windows):
            start = window * self.control_window
            end = min(start + self.control_window, trace.duration)
            observed_rate = trace.rate_in_window(start, end)
            ratio = self.controller.update(observed_rate)
            window_ratios[window] = ratio
            timeline.append({"start": start, "rate": observed_rate, "ratio": ratio})

        def ratio_schedule(time: float) -> float:
            window = min(int(time / self.control_window), num_windows - 1)
            return float(window_ratios[window])

        simulator = ServingSimulator(self.service_model, self.batching)
        result = simulator.run(trace, mode="flexiq", ratio_schedule=ratio_schedule)

        average_ratio = float(np.mean(window_ratios)) if num_windows else 0.0
        effective_accuracy = None
        if accuracy_by_ratio:
            effective_accuracy = _effective_accuracy(window_ratios, accuracy_by_ratio)

        return AdaptiveServingResult(
            latencies=result.latencies,
            ratio_timeline=timeline,
            average_ratio=average_ratio,
            effective_accuracy=effective_accuracy,
            duration=trace.duration,
        )


def _effective_accuracy(
    window_ratios: np.ndarray, accuracy_by_ratio: Dict[float, float]
) -> float:
    """Time-averaged accuracy given per-ratio accuracies.

    Ratios not present in the table are mapped to the nearest configured
    ratio (the runtime only ever uses configured ratios, but guard anyway).
    """
    ratios = np.asarray(sorted(accuracy_by_ratio))
    accuracies = np.asarray([accuracy_by_ratio[r] for r in ratios])
    values = []
    for ratio in window_ratios:
        index = int(np.argmin(np.abs(ratios - ratio)))
        values.append(accuracies[index])
    return float(np.mean(values)) if values else float("nan")

"""Adaptive serving: FlexiQ's dynamic 4-bit ratio control under load (Fig. 9).

The engine divides time into control windows; at every window boundary the
:class:`~repro.core.controller.AdaptiveRatioController` observes the request
rate of the previous window and picks the 4-bit ratio for the next one.  The
resulting latency distribution is compared against fixed INT8 and INT4
deployments, and the effective accuracy is the ratio-weighted average of the
per-ratio accuracies measured offline (Table 2).

:class:`AdaptiveServingSimulator` is a compatibility wrapper over
:class:`~repro.serving.engine.ServingEngine`: the controller rides in an
:class:`~repro.serving.policies.AdaptiveRatioPolicy` (via
:meth:`~repro.core.controller.AdaptiveRatioController.as_policy`), execution
goes through a :class:`~repro.serving.executors.ModeledExecutor`, and the
window/timeline bookkeeping that used to live here is read back off the
policy.  Results are bit-identical to the seed implementation.

This wrapper (like the paper's Figure 9 setup) adapts on the **global**
window rate of one accelerator's trace.  Multi-server deployments should
prefer :class:`~repro.serving.policies.PerServerAdaptiveRatioPolicy`, which
runs one controller per server on per-server telemetry signals (see
:mod:`repro.serving.cluster`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.controller import AdaptiveRatioController
from repro.data.traces import RequestTrace
from repro.serving.engine import BatchingConfig, ServingEngine
from repro.serving.executors import ModeledExecutor
from repro.serving.metrics import latency_percentiles, summarize_latencies
from repro.serving.simulator import ServiceTimeModel


@dataclass
class AdaptiveServingResult:
    """Outcome of an adaptive serving simulation."""

    latencies: np.ndarray
    ratio_timeline: List[Dict[str, float]]   # window start, observed rate, ratio
    average_ratio: float
    effective_accuracy: Optional[float]
    duration: float

    def summary(self) -> Dict[str, float]:
        return summarize_latencies(self.latencies)

    @property
    def median_latency(self) -> float:
        return latency_percentiles(self.latencies, (50,))["p50"]


class AdaptiveServingSimulator:
    """Serving simulator driven by the FlexiQ ratio controller."""

    def __init__(
        self,
        service_model: ServiceTimeModel,
        controller: AdaptiveRatioController,
        batching: Optional[BatchingConfig] = None,
        control_window: float = 1.0,
        num_servers: int = 1,
    ) -> None:
        self.service_model = service_model
        self.controller = controller
        # A fresh config per instance: a shared mutable default would leak
        # max_batch/drop_after edits across simulators.
        self.batching = batching if batching is not None else BatchingConfig()
        self.control_window = float(control_window)
        self.num_servers = int(num_servers)

    def run(
        self,
        trace: RequestTrace,
        accuracy_by_ratio: Optional[Dict[float, float]] = None,
    ) -> AdaptiveServingResult:
        """Simulate the trace with per-window ratio adaptation.

        ``accuracy_by_ratio`` (e.g. the Table 2 sweep) lets the result report
        the time-averaged effective accuracy of the adaptive deployment.
        """
        policy = self.controller.as_policy(control_window=self.control_window)
        engine = ServingEngine(batching=self.batching, num_servers=self.num_servers)
        engine.register(
            self.service_model.model_name,
            ModeledExecutor(self.service_model),
            policy=policy,
            mode="flexiq",
        )
        outcome = engine.run(trace=trace)

        window_ratios = policy.window_ratios
        effective_accuracy = None
        if accuracy_by_ratio:
            effective_accuracy = _effective_accuracy(window_ratios, accuracy_by_ratio)

        return AdaptiveServingResult(
            latencies=outcome.latencies,
            ratio_timeline=policy.timeline,
            average_ratio=policy.average_ratio,
            effective_accuracy=effective_accuracy,
            duration=trace.duration,
        )


def _effective_accuracy(
    window_ratios: np.ndarray, accuracy_by_ratio: Dict[float, float]
) -> float:
    """Time-averaged accuracy given per-ratio accuracies.

    Ratios not present in the table are mapped to the nearest configured
    ratio (the runtime only ever uses configured ratios, but guard anyway).
    Vectorized: one broadcast ``argmin`` over the |windows| x |ratios|
    difference matrix instead of a per-window Python loop; ties resolve to
    the lowest index, exactly like the sequential ``np.argmin``.
    """
    window_ratios = np.asarray(window_ratios, dtype=np.float64)
    if window_ratios.size == 0:
        return float("nan")
    ratios = np.asarray(sorted(accuracy_by_ratio))
    accuracies = np.asarray([accuracy_by_ratio[r] for r in ratios])
    nearest = np.argmin(np.abs(ratios[None, :] - window_ratios[:, None]), axis=1)
    return float(np.mean(accuracies[nearest]))

"""Resilience: fault injection, request preemption & migration policies.

The cluster control plane (:mod:`repro.serving.cluster`) can grow and shrink
the fleet, but until this module a batch pinned to a failed server was simply
lost work.  Three pieces make the serving stack survive faults:

* **Fault plane** — :class:`FaultEvent` describes one injected fault (a
  ``crash``, a ``slowdown`` by a factor, or a ``recover``) against one
  server; a :class:`FaultSchedule` is the validated, time-ordered script a
  :class:`~repro.serving.cluster.ClusterEngine` applies at telemetry window
  boundaries.  Per-server health lands in
  :class:`~repro.serving.cluster.ServerSpec` state (``health`` /
  ``slow_factor``) and every applied fault is surfaced on the
  :class:`~repro.serving.telemetry.TelemetryBus` timeline next to the scale
  events.  Slowdowns act through :class:`DegradableExecutor`, a transparent
  per-server executor wrapper whose service-time factor the control plane
  adjusts at run time.
* **Preemption & migration** — when a server crashes (or, with a migration
  policy configured, is deactivated by the autoscaler), the engine's
  :meth:`~repro.serving.engine.ServingEngine.preempt_server` rewinds the
  server's unfinished batches and hands the affected requests — as
  :class:`Migrant` records — to a :class:`MigrationPolicy`, which decides per
  request whether it re-enters the queue (and when it becomes serviceable)
  or is dropped.  Requeued migrants flow back through the configured
  :class:`~repro.serving.schedulers.Scheduler` and are re-placed by the
  configured :class:`~repro.serving.placement.Placer`; each successful move
  increments :attr:`~repro.serving.engine.Response.migrations`, and the
  policy's ``delay`` charges migration latency explicitly (a migrant is
  never serviceable before ``preemption time + delay``).
* **Predictive placement** — lives in :mod:`repro.serving.placement`
  (:class:`~repro.serving.placement.PredictivePlacer`): windowed telemetry
  trends instead of instantaneous free clocks, which is what notices a
  *degraded* (slowed-down) server whose nominal speed is stale.
* **Failure domains** — servers carry a ``zone``/``rack`` identity
  (:class:`~repro.serving.cluster.ServerSpec`, grouped by
  :class:`~repro.serving.cluster.ClusterTopology`) and faults can be
  domain-scoped (:data:`DOMAIN_FAULT_KINDS`: ``zone_outage``,
  ``rack_slowdown``, ...): one schedule event hits every server of the
  domain at once, expanded per server by :meth:`FaultSchedule.expand` with
  a ``domain`` tag that follows each event onto the telemetry timeline.
  Spread placement (:class:`~repro.serving.placement.SpreadPlacer`) and
  domain-aware autoscaling keep a model's capacity from concentrating in
  one domain so the correlated loss stays survivable.
* **Warm spares** — a :class:`WarmSparePool` holds standby servers with
  pre-replicated executor state out of the ordinary active set; a crash of
  an active server promotes the fastest healthy reserve spare with only
  ``promotion_latency`` of activation cost (not the cold ``startup_delay``),
  so the migrated victims land on restored capacity immediately.
* **Partial-batch checkpointing** — a :class:`CheckpointPolicy`
  (:class:`StepCheckpoint`) lets ``preempt_server`` record how much of a
  killed batch's service had been checkpointed; migrants carry the
  surviving ``progress`` and a re-executed cohort pays only its largest
  residual demand instead of restarting from zero.

Everything here is opt-in: an engine that never calls ``preempt_server`` and
a cluster without a ``fault_schedule`` run the exact seed arithmetic
(single-server FIFO stays bit-identical to the seed simulator).

Three migration policies ship with the module:

* :class:`RequeueAtHeadMigration` — the whole preempted cohort re-enters the
  queue at the migration point in its original order, ahead of requests that
  have not yet arrived; under FIFO it re-forms at the head of the post-crash
  queue (typically as one batch the placer re-places).
* :class:`RedistributeMigration` — the cohort is split into chunks released
  ``stagger`` seconds apart, so each chunk forms its own batch and the
  placer re-places them *independently* — surviving servers share the failed
  server's work instead of one of them swallowing a head-of-line mega-batch.
* :class:`DropExpiredMigration` — deadline-aware wrapper: migrants whose
  deadline cannot possibly be met any more (it precedes the earliest time
  the migrant could be served) are dropped — and counted as drops — instead
  of wasting post-fault capacity; the rest are delegated to an inner policy
  (requeue-at-head by default).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Protocol, Sequence, TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.engine import (
        Batch,
        BatchExecution,
        BatchRecord,
        Executor,
        Request,
    )


FAULT_KINDS = ("crash", "slowdown", "recover")

#: Domain-scoped fault kinds: the whole zone/rack fails, degrades or
#: recovers at once (correlated failure).  The schedule carries them as
#: single events; :meth:`FaultSchedule.expand` turns each into per-server
#: events against a :class:`~repro.serving.cluster.ClusterTopology` at
#: application time.
DOMAIN_FAULT_KINDS = (
    "zone_outage",
    "zone_slowdown",
    "zone_recover",
    "rack_outage",
    "rack_slowdown",
    "rack_recover",
)

_DOMAIN_ACTION = {"outage": "crash", "slowdown": "slowdown", "recover": "recover"}


# ----------------------------------------------------------------------
# Fault plane
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultEvent:
    """One injected fault against one server or one failure domain.

    ``kind`` is ``"crash"`` (the server fails: it leaves the active set and
    its unfinished work is preempted), ``"slowdown"`` (service times are
    multiplied by ``factor`` until recovery — a thermal throttle, a noisy
    neighbour, a failing link), or ``"recover"`` (health and speed restored;
    a crashed server becomes eligible for service again).  ``time`` is the
    simulation time the fault strikes; the control plane applies it at the
    first telemetry window boundary after it.

    Domain-scoped kinds (:data:`DOMAIN_FAULT_KINDS`, e.g. ``"zone_outage"``,
    ``"rack_slowdown"``) hit every server of a failure domain at once:
    ``zone``/``rack`` names the domain (``server`` stays at the ``-1``
    sentinel) and :meth:`FaultSchedule.expand` resolves the event into
    per-server events whose ``domain`` tag records the correlated origin —
    the tag every expanded event carries onto the telemetry timeline.
    """

    time: float
    server: int = -1
    kind: str = "crash"
    factor: float = 1.0
    zone: Optional[str] = None
    rack: Optional[str] = None
    domain: str = ""

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("fault time must be >= 0")
        if self.kind in FAULT_KINDS:
            if self.server < 0:
                raise ValueError(
                    f"a {self.kind!r} fault must name a server id (>= 0); "
                    "use a domain kind (e.g. 'zone_outage') for whole-domain "
                    "faults"
                )
            if self.zone is not None or self.rack is not None:
                raise ValueError(
                    "server-scoped faults must not name a zone/rack; use a "
                    "domain kind (e.g. 'zone_outage') instead"
                )
        elif self.kind in DOMAIN_FAULT_KINDS:
            scope, _, _ = self.kind.partition("_")
            named = self.zone if scope == "zone" else self.rack
            other = self.rack if scope == "zone" else self.zone
            if not named:
                raise ValueError(f"a {self.kind!r} fault must name its {scope}")
            if other is not None:
                raise ValueError(
                    f"a {self.kind!r} fault must name only its {scope}"
                )
            if self.server != -1:
                raise ValueError(
                    f"a {self.kind!r} fault is domain-scoped; leave server at "
                    "the -1 sentinel"
                )
        else:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; one of "
                f"{', '.join(FAULT_KINDS + DOMAIN_FAULT_KINDS)}"
            )
        if self.kind.endswith("slowdown") and self.factor <= 1.0:
            raise ValueError("a slowdown needs factor > 1 (service times multiply)")


class FaultSchedule:
    """A validated, time-ordered script of fault events for one run.

    The schedule itself is immutable; the control plane keeps its own cursor
    per run, so one schedule can drive any number of (deterministic,
    repeatable) runs.

    Validation rejects scripts that would silently mis-apply at window
    boundaries: exact duplicate events, two same-instant events against the
    same server (their application order would be arbitrary), and — on fully
    server-scoped schedules — a ``recover`` for a server that never crashed
    or slowed down (a typo'd server id, not a scenario).  Domain-scoped
    events defer the recover check to :meth:`expand`, where the per-server
    script is known.
    """

    def __init__(self, events: Iterable[FaultEvent]) -> None:
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda event: (event.time, event.server, event.kind))
        )
        self._validate()

    def _validate(self) -> None:
        seen = set()
        instants = set()
        state: dict = {}
        domain_scoped = False
        for event in self.events:
            key = (
                event.time, event.server, event.kind, event.factor,
                event.zone, event.rack,
            )
            if key in seen:
                raise ValueError(f"duplicate fault event: {event!r}")
            seen.add(key)
            if event.kind in DOMAIN_FAULT_KINDS:
                domain_scoped = True
                continue
            instant = (event.time, event.server)
            if instant in instants:
                raise ValueError(
                    f"two fault events against server {event.server} at "
                    f"t={event.time:g}; same-instant application order would "
                    "be arbitrary — separate them in time"
                )
            instants.add(instant)
            if domain_scoped:
                continue  # per-server sequencing is checked post-expansion
            if event.kind == "crash":
                state[event.server] = "failed"
            elif event.kind == "slowdown":
                # A slowdown never resurrects a crashed server (the control
                # plane ignores it until recovery), so "failed" sticks.
                if state.get(event.server) != "failed":
                    state[event.server] = "degraded"
            else:  # recover
                if state.get(event.server) not in ("failed", "degraded"):
                    raise ValueError(
                        f"recover for server {event.server} at "
                        f"t={event.time:g}, but no earlier crash/slowdown "
                        "left it unhealthy (typo'd server id?)"
                    )
                state[event.server] = "healthy"

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def servers(self) -> List[int]:
        """Server ids the schedule touches directly (ascending, unique).

        Domain-scoped events name no server until :meth:`expand` resolves
        them against a topology, so they do not appear here.
        """
        return sorted(
            {event.server for event in self.events if event.server >= 0}
        )

    @property
    def has_domain_events(self) -> bool:
        """Whether any event is domain-scoped (needs :meth:`expand`)."""
        return any(event.kind in DOMAIN_FAULT_KINDS for event in self.events)

    def as_events(self) -> "EventCalendar":
        """The schedule as a fresh :class:`~repro.serving.core.EventCalendar`.

        One :data:`~repro.serving.core.FAULT` event per schedule entry, the
        :class:`FaultEvent` as its payload.  Because ``events`` is already
        ``(time, server, kind)``-sorted and the calendar breaks time ties by
        insertion order, pops replay the schedule exactly — the calendar is
        the per-run cursor the class docstring promises, with O(log n)
        peeks against the control plane's other event sources.
        """
        from repro.serving.core import EventCalendar, FAULT

        calendar = EventCalendar()
        for event in self.events:
            calendar.schedule(event.time, FAULT, event)
        return calendar

    def expand(self, topology) -> "FaultSchedule":
        """Resolve domain-scoped events into per-server events.

        ``topology`` is a :class:`~repro.serving.cluster.ClusterTopology`;
        each domain event becomes one event per member server, carrying a
        ``domain`` tag (``"zone:eu-1"``) so the telemetry timeline shows the
        correlated origin.  Server-scoped events pass through untouched.
        The expanded schedule re-validates, so a zone outage colliding with
        a same-instant server event, or a recover with nothing to recover,
        fails loudly here instead of mis-applying mid-run.
        """
        expanded: List[FaultEvent] = []
        for event in self.events:
            if event.kind in FAULT_KINDS:
                expanded.append(event)
                continue
            scope, _, action = event.kind.partition("_")
            name = event.zone if scope == "zone" else event.rack
            members = (
                topology.servers_in_zone(name)
                if scope == "zone"
                else topology.servers_in_rack(name)
            )
            if not members:
                raise ValueError(
                    f"fault schedule names {scope} {name!r}, but the cluster "
                    f"topology has no server in it"
                )
            expanded.extend(
                FaultEvent(
                    time=event.time,
                    server=server,
                    kind=_DOMAIN_ACTION[action],
                    factor=event.factor,
                    domain=f"{scope}:{name}",
                )
                for server in members
            )
        return FaultSchedule(expanded)

    @classmethod
    def single_crash(
        cls, server: int, at: float, recover_at: Optional[float] = None
    ) -> "FaultSchedule":
        """The canonical scenario: one server crashes (and maybe recovers)."""
        events = [FaultEvent(time=at, server=server, kind="crash")]
        if recover_at is not None:
            if recover_at <= at:
                raise ValueError("recover_at must come after the crash")
            events.append(FaultEvent(time=recover_at, server=server, kind="recover"))
        return cls(events)

    @classmethod
    def zone_outage(
        cls, zone: str, at: float, recover_at: Optional[float] = None
    ) -> "FaultSchedule":
        """A whole zone fails at once (and maybe recovers) — the correlated
        scenario failure-domain placement exists for."""
        events = [FaultEvent(time=at, kind="zone_outage", zone=zone)]
        if recover_at is not None:
            if recover_at <= at:
                raise ValueError("recover_at must come after the outage")
            events.append(FaultEvent(time=recover_at, kind="zone_recover", zone=zone))
        return cls(events)

    @classmethod
    def rack_slowdown(
        cls, rack: str, at: float, factor: float, recover_at: Optional[float] = None
    ) -> "FaultSchedule":
        """A whole rack degrades at once (a shared-switch brownout)."""
        events = [
            FaultEvent(time=at, kind="rack_slowdown", rack=rack, factor=factor)
        ]
        if recover_at is not None:
            if recover_at <= at:
                raise ValueError("recover_at must come after the slowdown")
            events.append(FaultEvent(time=recover_at, kind="rack_recover", rack=rack))
        return cls(events)


class DegradableExecutor:
    """Executor wrapper whose service times the fault plane can inflate.

    ``factor`` starts at 1.0 (transparent); a slowdown fault raises it and a
    recovery resets it.  Outputs and executed-ratio overrides pass through
    untouched — only the reported service time stretches, which is exactly
    what a degraded-but-correct accelerator looks like from the queue.
    """

    def __init__(self, inner: "Executor") -> None:
        self.inner = inner
        self.factor = 1.0

    def execute(self, batch: "Batch", mode: str, ratio: float) -> "BatchExecution":
        execution = self.inner.execute(batch, mode, ratio)
        if self.factor != 1.0:
            execution = replace(
                execution, service_time=execution.service_time * self.factor
            )
        return execution


# ----------------------------------------------------------------------
# Preemption & migration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Migrant:
    """One request preempted off a failing/deactivated server.

    ``slot`` is the engine's stable admission slot, ``arrival`` the original
    arrival time (latency is always charged from it — migration shows up as
    response time, never hides), ``deadline``/``request`` carry scheduler
    metadata when the session has explicit requests (trace sessions migrate
    too, with ``request=None``), and ``migrations`` counts moves *before*
    this preemption.  ``progress`` is the fraction of the request's service
    already completed and checkpointed (0.0 without a
    :class:`CheckpointPolicy`): a migrant with ``progress > 0`` resumes with
    only ``1 - progress`` of its service demand, which migration policies
    may weigh when planning.
    """

    slot: int
    arrival: float
    deadline: Optional[float] = None
    request: Optional["Request"] = None
    migrations: int = 0
    progress: float = 0.0


@dataclass(frozen=True)
class Preemption:
    """What one :meth:`ServingEngine.preempt_server` call did."""

    batches: int        # unfinished batches rewound off the server
    migrated: int       # requests requeued (each gains one migration)
    dropped: int        # requests dropped by the migration policy (or None policy)

    @property
    def requests(self) -> int:
        return self.migrated + self.dropped


class MigrationPolicy(Protocol):
    """Decides where preempted requests go.

    :meth:`plan` sees the whole preempted cohort (in original batch order)
    plus the preemption time and returns one entry per migrant: a float
    *ready key* — the pending-queue ordering key, which is also the earliest
    time the migrant may be served — or ``None`` to drop the request (it is
    counted as a drop, and as a deadline miss if it carried one).  The
    engine clamps ready keys to at least the preemption time: migrated work
    can never be re-served in the past.
    """

    def plan(
        self, migrants: Sequence[Migrant], time: float
    ) -> Sequence[Optional[float]]:
        ...


@dataclass
class RequeueAtHeadMigration:
    """Re-enter the whole cohort at the migration point, original order.

    Every migrant becomes serviceable at ``time + delay`` (``delay`` is the
    explicit migration cost: state handoff, connection re-establishment) and
    keeps its position relative to the other migrants.  Queued work that
    arrived before the fault keeps its place — the engine is work-conserving
    — but the cohort precedes everything that has not yet arrived, so under
    FIFO it sits at the head of the post-fault queue.
    """

    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError("migration delay must be >= 0")

    def plan(
        self, migrants: Sequence[Migrant], time: float
    ) -> List[Optional[float]]:
        ready = time + self.delay
        return [ready] * len(migrants)


@dataclass
class RedistributeMigration:
    """Split the cohort into chunks the placer re-places independently.

    A crashed server's in-flight batch can be large (``max_batch`` under
    backlog); requeued as one block it re-forms as one batch on *one*
    surviving server.  This policy releases the cohort in chunks of
    ``chunk`` requests, ``stagger`` seconds apart: each chunk arrives as its
    own head-of-queue run, forms its own batch, and goes through the
    :class:`~repro.serving.placement.Placer` separately — so the surviving
    servers *share* the failed server's work.  ``stagger`` should be on the
    order of one batch service time; ``delay`` is the per-migration cost
    charged before the first chunk.
    """

    delay: float = 0.0
    chunk: int = 16
    stagger: float = 0.002

    def __post_init__(self) -> None:
        if self.delay < 0 or self.stagger < 0:
            raise ValueError("delay and stagger must be >= 0")
        if self.chunk < 1:
            raise ValueError("chunk must be >= 1")

    def plan(
        self, migrants: Sequence[Migrant], time: float
    ) -> List[Optional[float]]:
        return [
            time + self.delay + (index // self.chunk) * self.stagger
            for index in range(len(migrants))
        ]


@dataclass
class DropExpiredMigration:
    """Drop migrants whose deadline is already unwinnable; requeue the rest.

    A migrant whose ``deadline`` precedes the earliest time it could be
    served again (the inner policy's ready key) can only waste post-fault
    capacity; it is dropped immediately and counted as a drop — which also
    means a deadline miss, so the accounting stays honest.  Everything else
    (including deadline-less migrants) is planned by ``within``
    (:class:`RequeueAtHeadMigration` with the same ``delay`` by default).
    """

    delay: float = 0.0
    within: Optional[MigrationPolicy] = None

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError("migration delay must be >= 0")
        if self.within is None:
            self.within = RequeueAtHeadMigration(delay=self.delay)

    def plan(
        self, migrants: Sequence[Migrant], time: float
    ) -> List[Optional[float]]:
        keys = list(self.within.plan(migrants, time))
        if len(keys) != len(migrants):
            raise ValueError("inner migration policy returned a short plan")
        for index, (migrant, key) in enumerate(zip(migrants, keys)):
            if key is None or migrant.deadline is None:
                continue
            if migrant.deadline <= max(float(key), time):
                keys[index] = None
        return keys


# ----------------------------------------------------------------------
# Partial-batch checkpointing
# ----------------------------------------------------------------------
class CheckpointPolicy(Protocol):
    """How much of a killed batch's work survives the preemption.

    :meth:`completed_fraction` sees the rewound batch's record and the kill
    time and returns the fraction of the batch's service (in ``[0, 1)``)
    that was checkpointed before the kill — the work the batch's requests do
    *not* have to redo.  The engine stores the fraction per victim request
    and, when a migrated cohort re-executes, scales the batch's service
    time by the cohort's largest residual demand (a batch runs its members'
    remaining steps jointly, so one fresh rider costs the full batch).
    """

    def completed_fraction(self, record: "BatchRecord", time: float) -> float:
        ...


@dataclass(frozen=True)
class StepCheckpoint:
    """Checkpoint at ``steps`` equally-spaced points through each batch.

    A batch killed ``elapsed`` seconds into a ``span``-second service has
    crossed ``floor(steps * elapsed / span)`` checkpoints; the fraction of
    work behind the last crossed checkpoint survives the preemption (the
    partial step in flight is lost, exactly like an un-checkpointed batch
    loses everything).  ``steps=1`` checkpoints nothing — the fraction is
    always 0 — which makes the degenerate policy equivalent to no policy.

    Restoring a checkpoint on the resuming server is optionally *priced*:
    ``transfer_cost`` is a flat per-restore charge (seconds — moving the
    model/KV state to the new server), ``transfer_per_step`` adds a charge
    per checkpointed step actually being restored (state grows with saved
    progress).  :meth:`restore_seconds` turns a migrant's surviving
    progress fraction into that charge; the engine records it per victim
    and the first batch that *consumes* the checkpoint pays the cohort's
    largest transfer alongside its residual re-execution (see
    ``ServingEngine._execute``).  Both default to 0.0 — the free-restore
    seed behaviour.
    """

    steps: int = 4
    transfer_cost: float = 0.0
    transfer_per_step: float = 0.0

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise ValueError("steps must be >= 1")
        if self.transfer_cost < 0:
            raise ValueError("transfer_cost must be >= 0 seconds")
        if self.transfer_per_step < 0:
            raise ValueError("transfer_per_step must be >= 0 seconds")

    def completed_fraction(self, record: "BatchRecord", time: float) -> float:
        span = record.finish - record.start
        elapsed = time - record.start
        if span <= 0 or elapsed <= 0:
            return 0.0
        crossed = int(self.steps * min(elapsed / span, 1.0))
        return min(crossed, self.steps - 1) / self.steps

    def restore_seconds(self, progress: float) -> float:
        """Seconds to restore a checkpoint holding ``progress`` of the work.

        Zero when there is nothing to restore (``progress <= 0``); otherwise
        the flat ``transfer_cost`` plus ``transfer_per_step`` for each
        checkpointed step the progress fraction represents (rounded to the
        nearest step — compounded re-migration fractions may fall between
        step boundaries).
        """
        if progress <= 0.0:
            return 0.0
        return self.transfer_cost + self.transfer_per_step * round(
            progress * self.steps
        )


# ----------------------------------------------------------------------
# Warm spares
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WarmSparePool:
    """Standby servers the control plane promotes on a crash, lag-free.

    ``spares`` are server ids (of the cluster's spec list) held in reserve:
    they start parked, the autoscaler never wakes them for ordinary load,
    and their prepared-kernel/executor state is registered with everything
    else — pre-replicated, which is what makes promotion cheap.  When a
    crash removes an *active* server, the
    :class:`~repro.serving.cluster.ClusterEngine` promotes the fastest
    healthy reserve spare with ``promotion_latency`` seconds of activation
    cost instead of the cluster's cold ``startup_delay`` — so migrated
    victims land on restored capacity instead of waiting out provisioning.
    Promotions (and demotions, when a recovered server releases its spare
    back to reserve) are :class:`~repro.serving.telemetry.ScaleEvent`\\ s on
    the telemetry timeline.
    """

    spares: Tuple[int, ...]
    promotion_latency: float = 0.0

    def __init__(
        self, spares: Sequence[int], promotion_latency: float = 0.0
    ) -> None:
        ids = [int(server) for server in spares]
        if not ids:
            raise ValueError("a WarmSparePool needs at least one spare server")
        if len(set(ids)) != len(ids):
            raise ValueError("spare server ids must be unique")
        if any(server < 0 for server in ids):
            raise ValueError("spare server ids must be >= 0")
        if promotion_latency < 0:
            raise ValueError("promotion_latency must be >= 0")
        object.__setattr__(self, "spares", tuple(sorted(ids)))
        object.__setattr__(self, "promotion_latency", float(promotion_latency))

"""Resilience: fault injection, request preemption & migration policies.

The cluster control plane (:mod:`repro.serving.cluster`) can grow and shrink
the fleet, but until this module a batch pinned to a failed server was simply
lost work.  Three pieces make the serving stack survive faults:

* **Fault plane** — :class:`FaultEvent` describes one injected fault (a
  ``crash``, a ``slowdown`` by a factor, or a ``recover``) against one
  server; a :class:`FaultSchedule` is the validated, time-ordered script a
  :class:`~repro.serving.cluster.ClusterEngine` applies at telemetry window
  boundaries.  Per-server health lands in
  :class:`~repro.serving.cluster.ServerSpec` state (``health`` /
  ``slow_factor``) and every applied fault is surfaced on the
  :class:`~repro.serving.telemetry.TelemetryBus` timeline next to the scale
  events.  Slowdowns act through :class:`DegradableExecutor`, a transparent
  per-server executor wrapper whose service-time factor the control plane
  adjusts at run time.
* **Preemption & migration** — when a server crashes (or, with a migration
  policy configured, is deactivated by the autoscaler), the engine's
  :meth:`~repro.serving.engine.ServingEngine.preempt_server` rewinds the
  server's unfinished batches and hands the affected requests — as
  :class:`Migrant` records — to a :class:`MigrationPolicy`, which decides per
  request whether it re-enters the queue (and when it becomes serviceable)
  or is dropped.  Requeued migrants flow back through the configured
  :class:`~repro.serving.schedulers.Scheduler` and are re-placed by the
  configured :class:`~repro.serving.placement.Placer`; each successful move
  increments :attr:`~repro.serving.engine.Response.migrations`, and the
  policy's ``delay`` charges migration latency explicitly (a migrant is
  never serviceable before ``preemption time + delay``).
* **Predictive placement** — lives in :mod:`repro.serving.placement`
  (:class:`~repro.serving.placement.PredictivePlacer`): windowed telemetry
  trends instead of instantaneous free clocks, which is what notices a
  *degraded* (slowed-down) server whose nominal speed is stale.

Everything here is opt-in: an engine that never calls ``preempt_server`` and
a cluster without a ``fault_schedule`` run the exact seed arithmetic
(single-server FIFO stays bit-identical to the seed simulator).

Three migration policies ship with the module:

* :class:`RequeueAtHeadMigration` — the whole preempted cohort re-enters the
  queue at the migration point in its original order, ahead of requests that
  have not yet arrived; under FIFO it re-forms at the head of the post-crash
  queue (typically as one batch the placer re-places).
* :class:`RedistributeMigration` — the cohort is split into chunks released
  ``stagger`` seconds apart, so each chunk forms its own batch and the
  placer re-places them *independently* — surviving servers share the failed
  server's work instead of one of them swallowing a head-of-line mega-batch.
* :class:`DropExpiredMigration` — deadline-aware wrapper: migrants whose
  deadline cannot possibly be met any more (it precedes the earliest time
  the migrant could be served) are dropped — and counted as drops — instead
  of wasting post-fault capacity; the rest are delegated to an inner policy
  (requeue-at-head by default).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Protocol, Sequence, TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.engine import Batch, BatchExecution, Executor, Request


FAULT_KINDS = ("crash", "slowdown", "recover")


# ----------------------------------------------------------------------
# Fault plane
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultEvent:
    """One injected fault against one server.

    ``kind`` is ``"crash"`` (the server fails: it leaves the active set and
    its unfinished work is preempted), ``"slowdown"`` (service times are
    multiplied by ``factor`` until recovery — a thermal throttle, a noisy
    neighbour, a failing link), or ``"recover"`` (health and speed restored;
    a crashed server becomes eligible for service again).  ``time`` is the
    simulation time the fault strikes; the control plane applies it at the
    first telemetry window boundary after it.
    """

    time: float
    server: int
    kind: str
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; one of {', '.join(FAULT_KINDS)}"
            )
        if self.time < 0:
            raise ValueError("fault time must be >= 0")
        if self.server < 0:
            raise ValueError("fault server must be a server id (>= 0)")
        if self.kind == "slowdown" and self.factor <= 1.0:
            raise ValueError("a slowdown needs factor > 1 (service times multiply)")


class FaultSchedule:
    """A validated, time-ordered script of fault events for one run.

    The schedule itself is immutable; the control plane keeps its own cursor
    per run, so one schedule can drive any number of (deterministic,
    repeatable) runs.
    """

    def __init__(self, events: Iterable[FaultEvent]) -> None:
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda event: (event.time, event.server))
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def servers(self) -> List[int]:
        """Server ids the schedule touches (ascending, unique)."""
        return sorted({event.server for event in self.events})

    @classmethod
    def single_crash(
        cls, server: int, at: float, recover_at: Optional[float] = None
    ) -> "FaultSchedule":
        """The canonical scenario: one server crashes (and maybe recovers)."""
        events = [FaultEvent(time=at, server=server, kind="crash")]
        if recover_at is not None:
            if recover_at <= at:
                raise ValueError("recover_at must come after the crash")
            events.append(FaultEvent(time=recover_at, server=server, kind="recover"))
        return cls(events)


class DegradableExecutor:
    """Executor wrapper whose service times the fault plane can inflate.

    ``factor`` starts at 1.0 (transparent); a slowdown fault raises it and a
    recovery resets it.  Outputs and executed-ratio overrides pass through
    untouched — only the reported service time stretches, which is exactly
    what a degraded-but-correct accelerator looks like from the queue.
    """

    def __init__(self, inner: "Executor") -> None:
        self.inner = inner
        self.factor = 1.0

    def execute(self, batch: "Batch", mode: str, ratio: float) -> "BatchExecution":
        execution = self.inner.execute(batch, mode, ratio)
        if self.factor != 1.0:
            execution = replace(
                execution, service_time=execution.service_time * self.factor
            )
        return execution


# ----------------------------------------------------------------------
# Preemption & migration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Migrant:
    """One request preempted off a failing/deactivated server.

    ``slot`` is the engine's stable admission slot, ``arrival`` the original
    arrival time (latency is always charged from it — migration shows up as
    response time, never hides), ``deadline``/``request`` carry scheduler
    metadata when the session has explicit requests (trace sessions migrate
    too, with ``request=None``), and ``migrations`` counts moves *before*
    this preemption.
    """

    slot: int
    arrival: float
    deadline: Optional[float] = None
    request: Optional["Request"] = None
    migrations: int = 0


@dataclass(frozen=True)
class Preemption:
    """What one :meth:`ServingEngine.preempt_server` call did."""

    batches: int        # unfinished batches rewound off the server
    migrated: int       # requests requeued (each gains one migration)
    dropped: int        # requests dropped by the migration policy (or None policy)

    @property
    def requests(self) -> int:
        return self.migrated + self.dropped


class MigrationPolicy(Protocol):
    """Decides where preempted requests go.

    :meth:`plan` sees the whole preempted cohort (in original batch order)
    plus the preemption time and returns one entry per migrant: a float
    *ready key* — the pending-queue ordering key, which is also the earliest
    time the migrant may be served — or ``None`` to drop the request (it is
    counted as a drop, and as a deadline miss if it carried one).  The
    engine clamps ready keys to at least the preemption time: migrated work
    can never be re-served in the past.
    """

    def plan(
        self, migrants: Sequence[Migrant], time: float
    ) -> Sequence[Optional[float]]:
        ...


@dataclass
class RequeueAtHeadMigration:
    """Re-enter the whole cohort at the migration point, original order.

    Every migrant becomes serviceable at ``time + delay`` (``delay`` is the
    explicit migration cost: state handoff, connection re-establishment) and
    keeps its position relative to the other migrants.  Queued work that
    arrived before the fault keeps its place — the engine is work-conserving
    — but the cohort precedes everything that has not yet arrived, so under
    FIFO it sits at the head of the post-fault queue.
    """

    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError("migration delay must be >= 0")

    def plan(
        self, migrants: Sequence[Migrant], time: float
    ) -> List[Optional[float]]:
        ready = time + self.delay
        return [ready] * len(migrants)


@dataclass
class RedistributeMigration:
    """Split the cohort into chunks the placer re-places independently.

    A crashed server's in-flight batch can be large (``max_batch`` under
    backlog); requeued as one block it re-forms as one batch on *one*
    surviving server.  This policy releases the cohort in chunks of
    ``chunk`` requests, ``stagger`` seconds apart: each chunk arrives as its
    own head-of-queue run, forms its own batch, and goes through the
    :class:`~repro.serving.placement.Placer` separately — so the surviving
    servers *share* the failed server's work.  ``stagger`` should be on the
    order of one batch service time; ``delay`` is the per-migration cost
    charged before the first chunk.
    """

    delay: float = 0.0
    chunk: int = 16
    stagger: float = 0.002

    def __post_init__(self) -> None:
        if self.delay < 0 or self.stagger < 0:
            raise ValueError("delay and stagger must be >= 0")
        if self.chunk < 1:
            raise ValueError("chunk must be >= 1")

    def plan(
        self, migrants: Sequence[Migrant], time: float
    ) -> List[Optional[float]]:
        return [
            time + self.delay + (index // self.chunk) * self.stagger
            for index in range(len(migrants))
        ]


@dataclass
class DropExpiredMigration:
    """Drop migrants whose deadline is already unwinnable; requeue the rest.

    A migrant whose ``deadline`` precedes the earliest time it could be
    served again (the inner policy's ready key) can only waste post-fault
    capacity; it is dropped immediately and counted as a drop — which also
    means a deadline miss, so the accounting stays honest.  Everything else
    (including deadline-less migrants) is planned by ``within``
    (:class:`RequeueAtHeadMigration` with the same ``delay`` by default).
    """

    delay: float = 0.0
    within: Optional[MigrationPolicy] = None

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError("migration delay must be >= 0")
        if self.within is None:
            self.within = RequeueAtHeadMigration(delay=self.delay)

    def plan(
        self, migrants: Sequence[Migrant], time: float
    ) -> List[Optional[float]]:
        keys = list(self.within.plan(migrants, time))
        if len(keys) != len(migrants):
            raise ValueError("inner migration policy returned a short plan")
        for index, (migrant, key) in enumerate(zip(migrants, keys)):
            if key is None or migrant.deadline is None:
                continue
            if migrant.deadline <= max(float(key), time):
                keys[index] = None
        return keys

"""Iteration-level scheduling for autoregressive generation (continuous batching).

The one-shot engine (:mod:`repro.serving.engine`) admits a batch once and
runs it to completion — the right model for classification, the wrong one
for token-by-token generation, where a batch member that finishes early
leaves its slot padded until the *longest* member completes and a newly
arrived prompt waits out the whole batch before its first token.  This
module adds the vLLM/Orca-style alternative: an :class:`IterationScheduler`
whose scheduling quantum is one *decode iteration*, not one batch.  At
every iteration boundary finished sequences retire from the running batch
and queued requests join it (continuous batching), under a pluggable
:class:`AdmissionPolicy`:

* :class:`FcfsAdmission` — join in queue order (discipline key, then
  arrival; the :func:`~repro.serving.schedulers.admission_key` ordering);
* :class:`PrefillPriorityAdmission` — shortest prompt first, minimizing
  the prefill time the running batch stalls for (TTFT-greedy);
* :class:`TokenBudgetAdmission` — cap the batch's token footprint
  (prompt + generated tokens per sequence), the KV-cache-bound regime.

Requests opt in through the :class:`~repro.serving.engine.Request`
generation profile: ``prefill_tokens`` (prompt length) and
``max_new_tokens`` (tokens to generate, counting the one the prefill
emits — ``max_new_tokens=1`` is a prefill-only request with zero decode
steps).  Costs come from a :class:`GenerationBackend`:
:class:`ModeledGenerationBackend` uses the
:class:`~repro.serving.simulator.ServiceTimeModel` prefill/decode split
(prefill scales with prompt tokens, decode with batch width per step);
:class:`RuntimeGenerationBackend` drives real prepared-kernel forwards
through :meth:`~repro.serving.executors.RuntimeExecutor.execute_step`, so
the same loop runs against measured wall-clock step latencies — and a
per-step ratio change stays an O(1) prepared-kernel variable update.

Ratio policies see a :class:`~repro.serving.policies.GenerationStepContext`
on every iteration (via ``PolicyContext.generation``), so precision can
switch *mid-sequence* in response to decode pressure (see
:class:`~repro.serving.policies.DecodePressureRatioPolicy`).  A
:class:`~repro.serving.telemetry.TelemetryBus` receives per-iteration
batch events plus token-stream events (:meth:`~repro.serving.telemetry.
TelemetryBus.record_tokens`), giving placers and autoscalers windowed
tokens/sec and TTFT signals.

Resilience composes: :meth:`IterationScheduler.preempt_server` rewinds the
killed server's in-flight iteration exactly (tokens from *completed*
iterations are natural checkpoints and always survive) and requeues its
sequences with their generated-token progress; a
:class:`~repro.serving.resilience.StepCheckpoint` optionally salvages
partial prefill work from the killed iteration and prices the state
transfer each migrant pays before resuming elsewhere.

:func:`run_to_completion` is the static baseline the headline comparison
runs against: admit-once FIFO batches, full-width padded decode until the
longest member finishes — the classic inefficiency continuous batching
removes (see ``examples/continuous_batching.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, Set, Tuple, Union

import numpy as np

from repro.data.traces import RequestTrace
from repro.serving.core import ARRIVAL_CHUNK, EventCalendar
from repro.serving.engine import Batch, Request
from repro.serving.metrics import streaming_summary
from repro.serving.policies import (
    FixedRatioPolicy,
    GenerationStepContext,
    PolicyContext,
    policy_selector,
)
from repro.serving.schedulers import FifoScheduler, Scheduler, admission_key


# ----------------------------------------------------------------------
# Sequence state
# ----------------------------------------------------------------------
@dataclass
class SequenceState:
    """One generating request's progress through the iteration loop.

    ``generated`` counts emitted tokens (the prefill's first token
    included); ``token_times`` timestamps each of them.
    ``prefill_progress`` is the fraction of the prefill already done (> 0
    only for checkpoint-salvaged migrants); ``ready`` gates re-admission
    after a migration (fresh sequences are ready at arrival).
    """

    request: Request
    slot: int
    arrival: float
    prompt_tokens: int
    max_new_tokens: int
    ready: float
    generated: int = 0
    prefill_progress: float = 0.0
    token_times: List[float] = field(default_factory=list)
    migrations: int = 0
    server: int = -1
    finish_time: Optional[float] = None

    @property
    def live(self) -> bool:
        """Still decoding: more tokens to generate."""
        return self.generated < self.max_new_tokens

    @property
    def footprint(self) -> int:
        """Token footprint in the running batch (prompt + generated)."""
        return self.prompt_tokens + self.generated


# ----------------------------------------------------------------------
# Admission policies (who joins the running batch at a boundary)
# ----------------------------------------------------------------------
class AdmissionPolicy(Protocol):
    """Picks which waiting sequences join the running batch this iteration.

    ``waiting`` is the arrived-and-ready queue in admission order
    (discipline key, arrival, slot); ``running`` the current batch
    members; ``slots`` the free batch slots.  Return at most ``slots``
    members of ``waiting``; the returned *order* is the prefill order.
    When the running batch is empty and nothing is admitted, the
    scheduler force-admits the queue head (a starving server serves at
    least the sequence that woke it, mirroring the engine's batch rule).
    """

    def admit(
        self,
        waiting: Sequence[SequenceState],
        running: Sequence[SequenceState],
        slots: int,
    ) -> Sequence[SequenceState]:
        ...


class FcfsAdmission:
    """Join in queue order: the first ``slots`` waiting sequences."""

    def admit(
        self,
        waiting: Sequence[SequenceState],
        running: Sequence[SequenceState],
        slots: int,
    ) -> Sequence[SequenceState]:
        return list(waiting[:slots])


class PrefillPriorityAdmission:
    """Shortest prompt joins (and prefills) first.

    Prefills stall the whole running batch, so admitting the cheapest
    prompts first bounds the stall each boundary adds — the TTFT-greedy
    discipline.  Queue position breaks prompt-length ties, so equal
    prompts keep FIFO fairness.
    """

    def admit(
        self,
        waiting: Sequence[SequenceState],
        running: Sequence[SequenceState],
        slots: int,
    ) -> Sequence[SequenceState]:
        ranked = sorted(
            range(len(waiting)), key=lambda i: (waiting[i].prompt_tokens, i)
        )
        return [waiting[i] for i in ranked[: max(0, int(slots))]]


class TokenBudgetAdmission:
    """Cap the running batch's token footprint at ``budget_tokens``.

    The KV-cache-bound regime: every running sequence occupies
    ``prompt_tokens + generated`` tokens of state, and a joiner is
    admitted only while the batch's total footprint (with the joiner's
    prompt plus its first token) stays within budget.  Admission stops at
    the first candidate that does not fit (head-blocking, preserving the
    inner ordering's fairness).  ``within`` supplies the candidate order —
    FCFS by default, composable with :class:`PrefillPriorityAdmission`.
    The scheduler's force-admit still applies: a prompt larger than the
    whole budget serves alone rather than starving forever.
    """

    def __init__(
        self, budget_tokens: int, within: Optional[AdmissionPolicy] = None
    ) -> None:
        if budget_tokens < 1:
            raise ValueError("budget_tokens must be >= 1")
        self.budget_tokens = int(budget_tokens)
        self.within = within if within is not None else FcfsAdmission()

    def admit(
        self,
        waiting: Sequence[SequenceState],
        running: Sequence[SequenceState],
        slots: int,
    ) -> Sequence[SequenceState]:
        ordered = self.within.admit(waiting, running, slots)
        in_flight = sum(seq.footprint for seq in running)
        chosen: List[SequenceState] = []
        for seq in ordered:
            cost = seq.prompt_tokens + max(1, seq.generated)
            if in_flight + cost > self.budget_tokens:
                break
            in_flight += cost
            chosen.append(seq)
        return chosen


# ----------------------------------------------------------------------
# Generation backends (what one iteration costs)
# ----------------------------------------------------------------------
class GenerationBackend(Protocol):
    """Cost model of the two generation phases, per server."""

    def prefill_seconds(self, prompt_tokens: int, mode: str, ratio: float) -> float:
        """Seconds to prefill one ``prompt_tokens``-token prompt."""
        ...

    def decode_seconds(self, width: int, mode: str, ratio: float) -> float:
        """Seconds for one decode step over ``width`` live sequences."""
        ...


class ModeledGenerationBackend:
    """Analytic prefill/decode costs from a :class:`ServiceTimeModel`."""

    def __init__(self, service_model) -> None:
        self.service_model = service_model

    def prefill_seconds(self, prompt_tokens: int, mode: str, ratio: float) -> float:
        return self.service_model.prefill_latency(prompt_tokens, mode, ratio)

    def decode_seconds(self, width: int, mode: str, ratio: float) -> float:
        return self.service_model.decode_latency(width, mode, ratio)


class RuntimeGenerationBackend:
    """Measured step costs from real prepared-kernel forwards.

    Maps generation phases onto the
    :meth:`~repro.serving.executors.RuntimeExecutor.execute_step` hook: a
    prefill is one stacked forward of ``ceil(prompt_tokens /
    tokens_per_forward)`` samples (prompt tokens processed in parallel), a
    decode step one forward at the batch width (one token-equivalent
    sample per live sequence).  The executor needs a ``default_input``
    (one sample to replicate).  Per-step ratio changes flow through the
    prepared runtime's O(1) ``set_ratio`` — observable via the executor's
    ``ratio_switches``/``steps_executed`` counters.
    """

    def __init__(self, executor, tokens_per_forward: int = 64) -> None:
        if tokens_per_forward < 1:
            raise ValueError("tokens_per_forward must be >= 1")
        self.executor = executor
        self.tokens_per_forward = int(tokens_per_forward)

    def _step(self, size: int, mode: str, ratio: float) -> float:
        batch = Batch(
            model="generation",
            start_time=0.0,
            size=int(size),
            indices=np.arange(int(size), dtype=np.intp),
        )
        return float(self.executor.execute_step(batch, mode, ratio).service_time)

    def prefill_seconds(self, prompt_tokens: int, mode: str, ratio: float) -> float:
        if prompt_tokens <= 0:
            return 0.0
        size = -(-int(prompt_tokens) // self.tokens_per_forward)
        return self._step(size, mode, ratio)

    def decode_seconds(self, width: int, mode: str, ratio: float) -> float:
        if width <= 0:
            return 0.0
        return self._step(width, mode, ratio)


# ----------------------------------------------------------------------
# Records, responses, results
# ----------------------------------------------------------------------
@dataclass
class IterationRecord:
    """One executed iteration: prefills + one decode step on one server.

    Field-compatible with :class:`~repro.serving.engine.BatchRecord` where
    telemetry reads it (``start``/``finish``/``size``/``ratio``/``server``/
    ``queue_depth``), so iteration events flow through the same
    :class:`~repro.serving.telemetry.TelemetryBus` hooks as batches.
    ``size`` counts sequence-iterations (prefills + decode width — a
    joiner that prefills and decodes counts in both).
    """

    model: str
    start: float
    finish: float
    size: int
    ratio: float
    mode: str
    server: int = 0
    queue_depth: int = 0
    iteration: int = 0
    prefills: int = 0
    decode_width: int = 0
    tokens: int = 0


@dataclass
class GenerationResponse:
    """Outcome of one generating request: its full token-time stream."""

    request_id: int
    model: str
    arrival_time: float
    prompt_tokens: int
    max_new_tokens: int
    token_times: List[float]
    finish_time: float
    server: int = 0
    migrations: int = 0

    @property
    def tokens(self) -> int:
        return len(self.token_times)

    @property
    def ttft(self) -> float:
        """Time to first token (``nan`` if none was emitted)."""
        if not self.token_times:
            return float("nan")
        return self.token_times[0] - self.arrival_time

    @property
    def latency(self) -> float:
        """Arrival to last token (``nan`` while unfinished)."""
        return self.finish_time - self.arrival_time

    @property
    def finished(self) -> bool:
        return len(self.token_times) >= self.max_new_tokens


@dataclass
class GenerationPreemption:
    """Report of one :meth:`IterationScheduler.preempt_server` call."""

    iterations: int
    migrated: int


@dataclass
class GenerationResult:
    """Outcome of one generation run (continuous or run-to-completion)."""

    responses: List[GenerationResponse]
    iterations: List[IterationRecord]
    duration: float
    server_busy_times: List[float]
    migrated: int = 0

    @property
    def busy_time(self) -> float:
        return float(sum(self.server_busy_times))

    @property
    def tokens(self) -> int:
        return sum(response.tokens for response in self.responses)

    @property
    def tokens_per_sec(self) -> float:
        """Generated tokens per second of run duration."""
        if self.duration <= 0:
            return 0.0
        return self.tokens / self.duration

    def streaming(self, percentiles: Sequence[float] = (50, 99)) -> Dict[str, float]:
        """TTFT / inter-token percentiles + token throughput of the run."""
        return streaming_summary(
            [response.token_times for response in self.responses],
            [response.arrival_time for response in self.responses],
            duration=self.duration,
            percentiles=percentiles,
        )

    def ttft_percentile(self, percentile: float) -> float:
        return self.streaming((percentile,))[f"ttft_p{percentile:g}"]


# ----------------------------------------------------------------------
# Session state
# ----------------------------------------------------------------------
@dataclass
class _IterationUndo:
    """Exact inverse of one iteration (for preemption rewind)."""

    record: IterationRecord
    prefilled: List[Tuple[int, float]]  # (slot, prior prefill_progress)
    decoded: List[int]
    retired: List[int]
    ttfts: List[float]
    latencies: List[float]
    deadline_total: int
    deadline_met: int


class _GenSession:
    """Mutable state of one generation run."""

    def __init__(self, sequences: List[SequenceState], num_servers: int) -> None:
        self.sequences = sequences
        self.waiting: Set[int] = {seq.slot for seq in sequences}
        # Ready-ordered view of the waiting set, as ARRIVAL_CHUNK events.
        # Entries are never removed in place: a slot that joined a batch
        # (left ``waiting``) or migrated (new ``ready``) leaves its old
        # entry stale, and readers discard any head entry whose payload no
        # longer matches the live state (lazy deletion) — so the earliest
        # ready time is an O(log n) peek instead of a full-queue scan.
        self.ready_events = EventCalendar()
        for seq in sequences:
            self.ready_events.schedule(seq.ready, ARRIVAL_CHUNK, seq.slot)
        self.running: List[List[int]] = [[] for _ in range(num_servers)]
        self.free_at: List[float] = [0.0] * num_servers
        self.busy: List[float] = [0.0] * num_servers
        self.active: List[int] = list(range(num_servers))
        self.iterations: List[IterationRecord] = []
        self.undo: List[_IterationUndo] = []
        self.iter_count: List[int] = [0] * num_servers
        self.migrated = 0


# ----------------------------------------------------------------------
# The iteration scheduler
# ----------------------------------------------------------------------
class IterationScheduler:
    """Continuous batching: a decode loop with per-iteration admission.

    ``backend`` is one :class:`GenerationBackend` shared by every server
    or a list of exactly ``num_servers`` backends (one prepared runtime
    each, like the engine's per-server executors).  ``admission`` picks
    the joiners at each boundary (default :class:`FcfsAdmission`);
    ``scheduler`` orders the waiting queue (default FIFO — EDF/priority
    disciplines carry over via :func:`~repro.serving.schedulers.
    admission_key`).  ``policy`` selects the 4-bit ratio once per
    iteration and receives the generation step context, so precision can
    switch mid-sequence.  A ``telemetry`` bus receives per-iteration
    batch and token events.

    Drive it like the engine: :meth:`run` for a whole request list, or
    :meth:`start` / :meth:`step` / :meth:`finish` to interleave control
    actions (e.g. :meth:`preempt_server`) between iterations.
    """

    def __init__(
        self,
        backend: Union[GenerationBackend, Sequence[GenerationBackend]],
        max_batch: int = 8,
        admission: Optional[AdmissionPolicy] = None,
        policy=None,
        mode: str = "flexiq",
        model: str = "default",
        scheduler: Optional[Scheduler] = None,
        telemetry=None,
        num_servers: int = 1,
        tracer=None,
    ) -> None:
        if num_servers < 1:
            raise ValueError("num_servers must be >= 1")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.num_servers = int(num_servers)
        if isinstance(backend, (list, tuple)):
            backends = list(backend)
            if len(backends) != self.num_servers:
                raise ValueError(
                    f"got {len(backends)} backends for {self.num_servers} servers; "
                    "pass one per server (or a single shared backend)"
                )
        else:
            backends = [backend] * self.num_servers
        self.backends = backends
        self.max_batch = int(max_batch)
        self.admission: AdmissionPolicy = (
            admission if admission is not None else FcfsAdmission()
        )
        self.policy = policy if policy is not None else FixedRatioPolicy(0.0)
        self.mode = mode
        self.model = model
        self.scheduler: Scheduler = (
            scheduler if scheduler is not None else FifoScheduler()
        )
        self.telemetry = telemetry
        # Optional request-lifecycle tracer (duck-typed; see repro.obs):
        # iteration spans, per-sequence terminals, preemption/migration hops.
        self.tracer = tracer
        self._select = policy_selector(self.policy)
        self._session: Optional[_GenSession] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, requests: Sequence[Request]) -> None:
        """Open a generation session over ``requests`` (admitted up front)."""
        if self._session is not None:
            raise RuntimeError("a generation session is already open; finish() it")
        order = sorted(range(len(requests)), key=lambda i: requests[i].arrival_time)
        sequences = []
        for slot, index in enumerate(order):
            request = requests[index]
            if request.max_new_tokens < 1:
                raise ValueError(
                    "generation requests need max_new_tokens >= 1 "
                    f"(got {request.max_new_tokens}; max_new_tokens=1 is "
                    "prefill-only)"
                )
            if request.prefill_tokens < 0:
                raise ValueError("prefill_tokens must be >= 0")
            sequences.append(
                SequenceState(
                    request=request,
                    slot=slot,
                    arrival=float(request.arrival_time),
                    prompt_tokens=int(request.prefill_tokens),
                    max_new_tokens=int(request.max_new_tokens),
                    ready=float(request.arrival_time),
                )
            )
        arrivals = np.asarray([seq.arrival for seq in sequences], dtype=np.float64)
        horizon = float(arrivals[-1]) if len(arrivals) else 0.0
        self.policy.on_run_start(RequestTrace(arrivals, horizon))
        self._select = policy_selector(self.policy)
        self._session = _GenSession(sequences, self.num_servers)

    def step(self) -> Optional[IterationRecord]:
        """Run the next iteration (earliest server); ``None`` when done."""
        s = self._require_session()
        placed = self._next_server(s)
        if placed is None:
            return None
        server, start = placed
        return self._iterate(s, server, start)

    def finish(self) -> GenerationResult:
        """Drain every sequence, close the session, return the result."""
        s = self._require_session()
        try:
            while self.step() is not None:
                pass
        finally:
            self._session = None
        return self._finalize(s)

    def run(self, requests: Sequence[Request]) -> GenerationResult:
        """Serve ``requests`` to completion (start + finish)."""
        self.start(requests)
        return self.finish()

    def _require_session(self) -> _GenSession:
        if self._session is None:
            raise RuntimeError("no generation session open; call start() (or run())")
        return self._session

    # ------------------------------------------------------------------
    # Elasticity / resilience hooks
    # ------------------------------------------------------------------
    @property
    def active_servers(self) -> List[int]:
        return list(self._require_session().active)

    def activate_server(
        self, server: int, available_from: Optional[float] = None
    ) -> None:
        """(Re-)admit a server to the iteration loop."""
        s = self._require_session()
        server = int(server)
        if not 0 <= server < self.num_servers:
            raise ValueError(f"server {server} out of range")
        if server not in s.active:
            s.active = sorted(s.active + [server])
        if available_from is not None:
            s.free_at[server] = max(s.free_at[server], float(available_from))

    def preempt_server(
        self,
        server: int,
        time: float,
        delay: float = 0.0,
        checkpoint=None,
    ) -> GenerationPreemption:
        """Crash ``server`` at ``time``: migrate its sequences, tokens intact.

        The in-flight iteration (if any) is rewound exactly — its tokens,
        retirements, record and telemetry contribution undone; busy time
        up to the kill point stays billed (wasted work is still work).
        Tokens from *completed* iterations are natural checkpoints: every
        victim keeps its generated-token progress and re-enters the
        waiting queue ready at ``time + delay`` (its decode resumes on
        whichever server admits it — no prefill is repeated).

        ``checkpoint`` (e.g. :class:`~repro.serving.resilience.
        StepCheckpoint`) composes two ways: its ``completed_fraction`` of
        the killed iteration salvages that fraction of any prefill that
        ran in it (the victim resumes paying only the residual prefill),
        and its ``restore_seconds`` — when present — prices each migrant's
        state transfer (KV cache scales with generated progress), added
        to the migrant's ready time.  The server leaves the active set;
        :meth:`activate_server` re-admits it after recovery.
        """
        s = self._require_session()
        server = int(server)
        time = float(time)
        if not 0 <= server < self.num_servers:
            raise ValueError(f"server {server} out of range")
        if delay < 0:
            raise ValueError("delay must be >= 0")

        killed = 0
        # Iterations are sequential per server, so at most one is in
        # flight at ``time`` — the last one this server started.
        for index in range(len(s.iterations) - 1, -1, -1):
            record = s.iterations[index]
            if record.server != server:
                continue
            if record.finish <= time:
                break
            undo = s.undo[index]
            fraction = 0.0
            if checkpoint is not None and record.start < time:
                fraction = float(checkpoint.completed_fraction(record, time))
                if not 0.0 <= fraction < 1.0:
                    raise ValueError(
                        "checkpoint completed_fraction must be in [0, 1); "
                        f"got {fraction!r}"
                    )
            for slot in undo.retired:
                seq = s.sequences[slot]
                seq.finish_time = None
                s.running[server].append(slot)
            for slot in undo.decoded:
                seq = s.sequences[slot]
                seq.generated -= 1
                seq.token_times.pop()
            for slot, prior in undo.prefilled:
                seq = s.sequences[slot]
                seq.generated -= 1
                seq.token_times.pop()
                # Checkpoint salvage: the killed iteration's prefill work
                # survives up to the checkpointed fraction (compounding
                # over what an earlier migration had already salvaged).
                seq.prefill_progress = prior + (1.0 - prior) * fraction
            s.busy[server] -= record.finish - max(record.start, time)
            if self.telemetry is not None:
                self.telemetry.unrecord_batch(
                    record,
                    latencies=np.asarray(undo.latencies, dtype=np.float64),
                    deadline_total=undo.deadline_total,
                    deadline_met=undo.deadline_met,
                    kill_time=time,
                )
                self.telemetry.unrecord_tokens(
                    server, record.start, record.tokens, undo.ttfts
                )
            if self.tracer is not None:
                # The rewound iteration's span becomes `preempted`; the
                # un-retired sequences' terminals are retracted (they will
                # re-terminate when their decode resumes elsewhere).
                self.tracer.on_preempt(record, undo.retired, time)
            del s.iterations[index]
            del s.undo[index]
            s.iter_count[server] -= 1
            killed = 1
            break
        s.free_at[server] = max(
            [time]
            + [r.finish for r in s.iterations if r.server == server]
        )

        restore = getattr(checkpoint, "restore_seconds", None)
        victims = list(s.running[server])
        if self.tracer is not None and victims:
            self.tracer.on_requeue(
                victims,
                [s.sequences[slot].migrations for slot in victims],
                time,
                server,
            )
        for slot in victims:
            seq = s.sequences[slot]
            seq.migrations += 1
            seq.server = -1
            transfer = 0.0
            if restore is not None:
                progress = (
                    seq.generated / seq.max_new_tokens
                    if seq.generated > 0
                    else seq.prefill_progress
                )
                transfer = float(restore(progress))
            seq.ready = time + delay + transfer
            s.migrated += 1
        s.running[server] = []
        s.waiting.update(victims)
        for slot in victims:
            # Fresh calendar entry at the migrant's new ready time; the
            # pre-migration entry (if any) is now stale and will be lazily
            # discarded on peek.
            s.ready_events.schedule(s.sequences[slot].ready, ARRIVAL_CHUNK, slot)
        if server in s.active:
            s.active.remove(server)
        return GenerationPreemption(iterations=killed, migrated=len(victims))

    # ------------------------------------------------------------------
    # The iteration loop
    # ------------------------------------------------------------------
    def _admission_order(self, s: _GenSession, slots: List[int]) -> List[int]:
        return sorted(
            slots,
            key=lambda slot: admission_key(
                self.scheduler,
                s.sequences[slot].request,
                s.sequences[slot].arrival,
                slot,
            ),
        )

    def _min_ready(self, s: _GenSession) -> Optional[float]:
        """Earliest ready time over the waiting set (calendar peek).

        Discards stale calendar heads — slots that joined a batch, or whose
        migration moved their ready time — until the head matches a live
        waiting sequence.  Amortized O(log n): every entry is discarded at
        most once across the whole run.
        """
        calendar = s.ready_events
        while calendar:
            event = calendar.peek()
            slot = event.payload
            if slot in s.waiting and s.sequences[slot].ready == event.time:
                return event.time
            calendar.pop()
        return None

    def _next_server(self, s: _GenSession) -> Optional[Tuple[int, float]]:
        """(server, iteration start) of the earliest next iteration."""
        best: Optional[Tuple[float, int]] = None
        min_ready = self._min_ready(s)
        for server in s.active:
            if s.running[server]:
                candidate = s.free_at[server]
            elif min_ready is not None:
                candidate = max(s.free_at[server], min_ready)
            else:
                continue
            if best is None or (candidate, server) < best:
                best = (candidate, server)
        if best is None:
            return None
        return best[1], best[0]

    def _iterate(
        self, s: _GenSession, server: int, start: float
    ) -> IterationRecord:
        backend = self.backends[server]
        arrived = self._admission_order(
            s, [slot for slot in s.waiting if s.sequences[slot].ready <= start]
        )
        running = [s.sequences[slot] for slot in s.running[server]]
        free_slots = self.max_batch - len(running)
        candidates = [s.sequences[slot] for slot in arrived]
        joiners: List[SequenceState] = []
        if free_slots > 0 and candidates:
            joiners = list(self.admission.admit(candidates, running, free_slots))
            allowed = set(arrived)
            seen: set = set()
            for seq in joiners:
                if seq.slot not in allowed or seq.slot in seen:
                    raise ValueError(
                        "admission policy returned a sequence outside the "
                        "waiting set (or a duplicate)"
                    )
                seen.add(seq.slot)
            if len(joiners) > free_slots:
                raise ValueError(
                    f"admission policy admitted {len(joiners)} sequences "
                    f"into {free_slots} free slots"
                )
        if not running and not joiners and candidates:
            # Starvation guard: an idle server always serves the queue
            # head, exactly like the engine's at-least-one batch rule.
            joiners = [candidates[0]]

        prefillers = [seq for seq in joiners if seq.generated == 0]
        decode_width = len(running) + sum(
            1
            for seq in joiners
            if (seq.generated == 0 and seq.max_new_tokens > 1)
            or 0 < seq.generated < seq.max_new_tokens
        )
        context = PolicyContext(
            time=start,
            queue_depth=len(candidates),
            batch_size=len(running) + len(joiners),
            model=self.model,
            server=server,
            telemetry=self.telemetry,
            num_active=len(s.active),
            generation=GenerationStepContext(
                iteration=s.iter_count[server],
                decode_width=decode_width,
                prefill_requests=len(prefillers),
                prefill_tokens=sum(seq.prompt_tokens for seq in prefillers),
                tokens_in_flight=sum(seq.footprint for seq in running),
                waiting=len(candidates) - len(joiners),
            ),
        )
        ratio = float(self._select(context))

        for seq in joiners:
            s.waiting.remove(seq.slot)
            s.running[server].append(seq.slot)
            seq.server = server

        t = start
        tokens = 0
        ttfts: List[float] = []
        prefilled: List[Tuple[int, float]] = []
        for seq in joiners:
            if seq.generated != 0:
                continue  # migrant already past its prefill
            prefilled.append((seq.slot, seq.prefill_progress))
            t += backend.prefill_seconds(
                seq.prompt_tokens, self.mode, ratio
            ) * (1.0 - seq.prefill_progress)
            seq.prefill_progress = 1.0
            seq.generated = 1
            seq.token_times.append(t)
            ttfts.append(t - seq.arrival)
            tokens += 1

        decoders = [
            s.sequences[slot] for slot in s.running[server] if s.sequences[slot].live
        ]
        if decoders:
            t += backend.decode_seconds(len(decoders), self.mode, ratio)
            for seq in decoders:
                seq.generated += 1
                seq.token_times.append(t)
            tokens += len(decoders)

        retired: List[int] = []
        latencies: List[float] = []
        deadline_total = deadline_met = 0
        for slot in list(s.running[server]):
            seq = s.sequences[slot]
            if seq.live:
                continue
            seq.finish_time = seq.token_times[-1]
            s.running[server].remove(slot)
            retired.append(slot)
            latencies.append(seq.finish_time - seq.arrival)
            deadline = seq.request.deadline
            if deadline is not None:
                deadline_total += 1
                if seq.finish_time <= deadline:
                    deadline_met += 1

        record = IterationRecord(
            model=self.model,
            start=start,
            finish=t,
            size=len(prefilled) + len(decoders),
            ratio=ratio,
            mode=self.mode,
            server=server,
            queue_depth=len(candidates),
            iteration=s.iter_count[server],
            prefills=len(prefilled),
            decode_width=len(decoders),
            tokens=tokens,
        )
        s.iterations.append(record)
        s.undo.append(
            _IterationUndo(
                record=record,
                prefilled=prefilled,
                decoded=[seq.slot for seq in decoders],
                retired=retired,
                ttfts=ttfts,
                latencies=latencies,
                deadline_total=deadline_total,
                deadline_met=deadline_met,
            )
        )
        s.iter_count[server] += 1
        s.busy[server] += t - start
        s.free_at[server] = t
        if self.telemetry is not None:
            self.telemetry.record_batch(
                record,
                queue_depth=record.queue_depth,
                latencies=np.asarray(latencies, dtype=np.float64),
                deadline_total=deadline_total,
                deadline_met=deadline_met,
            )
            self.telemetry.record_tokens(server, start, tokens, ttfts)
        if self.tracer is not None:
            self.tracer.on_iteration(record)
            if retired:
                self.tracer.on_served(
                    retired,
                    [s.sequences[slot].arrival for slot in retired],
                    [s.sequences[slot].finish_time for slot in retired],
                    server,
                    deadlines=(
                        [
                            float("nan")
                            if s.sequences[slot].request.deadline is None
                            else float(s.sequences[slot].request.deadline)
                            for slot in retired
                        ]
                        if self.tracer.wants_deadlines
                        else None
                    ),
                )
        return record

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def _finalize(self, s: _GenSession) -> GenerationResult:
        responses = []
        for seq in s.sequences:
            responses.append(
                GenerationResponse(
                    request_id=(
                        seq.request.request_id
                        if seq.request.request_id >= 0
                        else seq.slot
                    ),
                    model=self.model,
                    arrival_time=seq.arrival,
                    prompt_tokens=seq.prompt_tokens,
                    max_new_tokens=seq.max_new_tokens,
                    token_times=list(seq.token_times),
                    finish_time=(
                        seq.finish_time
                        if seq.finish_time is not None
                        else float("nan")
                    ),
                    server=seq.server,
                    migrations=seq.migrations,
                )
            )
        last_arrival = max((seq.arrival for seq in s.sequences), default=0.0)
        duration = max([last_arrival] + s.free_at)
        return GenerationResult(
            responses=responses,
            iterations=s.iterations,
            duration=duration,
            server_busy_times=list(s.busy),
            migrated=s.migrated,
        )


# ----------------------------------------------------------------------
# Static baseline
# ----------------------------------------------------------------------
def run_to_completion(
    requests: Sequence[Request],
    backend: GenerationBackend,
    max_batch: int = 8,
    policy=None,
    mode: str = "flexiq",
    model: str = "default",
    num_servers: int = 1,
) -> GenerationResult:
    """Static (admit-once) generation: the baseline continuous batching beats.

    Classic run-to-completion semantics: a FIFO batch of up to
    ``max_batch`` arrived requests is admitted once; every member is
    prefilled, then the batch decodes at its **full width** until the
    longest member finishes — members that finish early pad their slots
    (their steps still cost full width), and newly arrived prompts wait
    for the *whole* batch to complete before their prefill starts.  Both
    inefficiencies are what iteration-level scheduling removes: padding
    costs tokens/sec, head-of-line blocking costs TTFT.
    """
    if max_batch < 1:
        raise ValueError("max_batch must be >= 1")
    if num_servers < 1:
        raise ValueError("num_servers must be >= 1")
    policy = policy if policy is not None else FixedRatioPolicy(0.0)
    ordered = sorted(requests, key=lambda request: request.arrival_time)
    for request in ordered:
        if request.max_new_tokens < 1:
            raise ValueError("generation requests need max_new_tokens >= 1")
    arrivals = np.asarray(
        [request.arrival_time for request in ordered], dtype=np.float64
    )
    horizon = float(arrivals[-1]) if len(arrivals) else 0.0
    policy.on_run_start(RequestTrace(arrivals, horizon))
    select = policy_selector(policy)

    free_at = [0.0] * num_servers
    busy = [0.0] * num_servers
    responses: List[GenerationResponse] = []
    iterations: List[IterationRecord] = []
    pos = 0
    batch_index = 0
    while pos < len(ordered):
        server = min(range(num_servers), key=free_at.__getitem__)
        start = max(free_at[server], float(arrivals[pos]))
        end = pos + 1
        while end < len(ordered) and end - pos < max_batch and arrivals[end] <= start:
            end += 1
        members = ordered[pos:end]
        width = len(members)
        steps = max(request.max_new_tokens for request in members) - 1
        context = PolicyContext(
            time=start,
            queue_depth=len(ordered) - pos,
            batch_size=width,
            model=model,
            server=server,
            generation=GenerationStepContext(
                iteration=batch_index,
                decode_width=width,
                prefill_requests=width,
                prefill_tokens=sum(r.prefill_tokens for r in members),
                tokens_in_flight=0,
                waiting=len(ordered) - end,
            ),
        )
        ratio = float(select(context))

        t = start
        token_times: List[List[float]] = [[] for _ in members]
        tokens = 0
        for position, request in enumerate(members):
            t += backend.prefill_seconds(request.prefill_tokens, mode, ratio)
            token_times[position].append(t)
            tokens += 1
        for _ in range(steps):
            # Padded decode: the step runs at full batch width even when
            # members have finished — the run-to-completion inefficiency.
            t += backend.decode_seconds(width, mode, ratio)
            for position, request in enumerate(members):
                if len(token_times[position]) < request.max_new_tokens:
                    token_times[position].append(t)
                    tokens += 1
        for position, request in enumerate(members):
            responses.append(
                GenerationResponse(
                    request_id=(
                        request.request_id
                        if request.request_id >= 0
                        else pos + position
                    ),
                    model=model,
                    arrival_time=float(request.arrival_time),
                    prompt_tokens=int(request.prefill_tokens),
                    max_new_tokens=int(request.max_new_tokens),
                    token_times=token_times[position],
                    finish_time=token_times[position][-1],
                    server=server,
                )
            )
        iterations.append(
            IterationRecord(
                model=model,
                start=start,
                finish=t,
                size=width * (1 + steps),
                ratio=ratio,
                mode=mode,
                server=server,
                queue_depth=len(ordered) - pos,
                iteration=batch_index,
                prefills=width,
                decode_width=width,
                tokens=tokens,
            )
        )
        busy[server] += t - start
        free_at[server] = t
        pos = end
        batch_index += 1

    last_arrival = float(arrivals[-1]) if len(arrivals) else 0.0
    duration = max([last_arrival] + free_at)
    return GenerationResult(
        responses=responses,
        iterations=iterations,
        duration=duration,
        server_busy_times=busy,
    )

"""FlexiQ reproduction: adaptive mixed-precision quantization.

This package reimplements the full FlexiQ system (EuroSys '26) and every
substrate it depends on: a NumPy autodiff/NN stack, a quantization framework,
the FlexiQ channel-selection and bit-lowering core, hardware latency models
for an NPU and several GPUs, and an inference-serving simulator.

The most common entry points are:

* :class:`repro.core.pipeline.FlexiQPipeline` -- quantize a model with FlexiQ
  and obtain a runtime object whose 4-bit ratio can be adjusted on the fly.
* :mod:`repro.nn.registry` -- build the model zoo used throughout the paper's
  evaluation.
* :mod:`repro.serving` -- run serving simulations with dynamic ratio control.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]

"""Module/Parameter containers mirroring the familiar torch.nn structure."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is registered as a learnable parameter of a module."""

    def __init__(self, data, requires_grad: bool = True, name: Optional[str] = None):
        super().__init__(data, requires_grad=requires_grad, name=name)


class Module:
    """Base class for all neural-network modules.

    Sub-modules and parameters assigned as attributes are registered
    automatically, which gives us ``named_modules``/``named_parameters``
    traversal, train/eval mode switching, and dotted-path submodule
    replacement -- the hook the quantization passes use to swap float layers
    for quantized ones.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.training: bool = True

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        else:
            # Re-assigning a registered name with a non-module clears it.
            params = self.__dict__.get("_parameters")
            if params is not None and name in params:
                del params[name]
            modules = self.__dict__.get("_modules")
            if modules is not None and name in modules:
                del modules[name]
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-learnable array that is part of the module state."""
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    def update_buffer(self, name: str, value: np.ndarray) -> None:
        """Replace a registered buffer's contents."""
        if name not in self._buffers:
            raise KeyError(f"buffer {name!r} is not registered")
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (prefix + name, param)
        for module_name, module in self._modules.items():
            yield from module.named_parameters(prefix + module_name + ".")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix + name + ".")

    def named_children(self) -> Iterator[Tuple[str, "Module"]]:
        yield from self._modules.items()

    def get_submodule(self, path: str) -> "Module":
        """Return a descendant module addressed by dotted ``path``."""
        if not path:
            return self
        module: Module = self
        for part in path.split("."):
            if part not in module._modules:
                raise KeyError(f"no submodule {path!r} (missing {part!r})")
            module = module._modules[part]
        return module

    def set_submodule(self, path: str, new_module: "Module") -> None:
        """Replace the descendant module addressed by dotted ``path``."""
        parts = path.split(".")
        parent = self.get_submodule(".".join(parts[:-1])) if len(parts) > 1 else self
        name = parts[-1]
        if name not in parent._modules:
            raise KeyError(f"no submodule {path!r}")
        parent._modules[name] = new_module
        object.__setattr__(parent, name, new_module)

    # ------------------------------------------------------------------
    # Mode switching and gradient management
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        for _, module in self.named_modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for _, module in self.named_modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        return int(sum(p.size for p in self.parameters()))

    # ------------------------------------------------------------------
    # State (de)serialisation
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flatten all parameters and buffers into a name -> array mapping."""
        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for module_name, module in self.named_modules():
            prefix = module_name + "." if module_name else ""
            for buffer_name, buffer in module._buffers.items():
                state[prefix + buffer_name] = np.array(buffer, copy=True)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load a mapping previously produced by :meth:`state_dict`."""
        param_map = dict(self.named_parameters())
        buffer_owners: Dict[str, Tuple[Module, str]] = {}
        for module_name, module in self.named_modules():
            prefix = module_name + "." if module_name else ""
            for buffer_name in module._buffers:
                buffer_owners[prefix + buffer_name] = (module, buffer_name)
        for name, value in state.items():
            if name in param_map:
                target = param_map[name]
                if target.data.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: {target.data.shape} vs {value.shape}"
                    )
                target.data = value.astype(target.data.dtype).copy()
            elif name in buffer_owners:
                module, buffer_name = buffer_owners[name]
                module.update_buffer(buffer_name, value.copy())
            else:
                raise KeyError(f"unexpected key in state dict: {name}")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        children = ", ".join(self._modules)
        return f"{type(self).__name__}({children})"


class ModuleList(Module):
    """A list of sub-modules that registers each element.

    Iteration reads from the registration table so swapping an element via
    :meth:`Module.set_submodule` (as the quantization passes do) is reflected
    immediately.
    """

    def __init__(self, modules: Optional[List[Module]] = None) -> None:
        super().__init__()
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> None:
        setattr(self, str(len(self._modules)), module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return self._modules[str(index)]


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for module in modules:
            setattr(self, str(len(self._modules)), module)

    def forward(self, x):
        for module in self._modules.values():
            x = module(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return self._modules[str(index)]

"""Neural-network layers, blocks and the model zoo used in the evaluation.

The zoo mirrors the paper's eleven vision models (ResNet-20/18/34/50,
MobileNetV2, ViT-S/B, DeiT-S/B, Swin-S/B) as scaled-down members of the same
architecture families, plus a small decoder-only language model for the
Section 8.10 case study.  See :mod:`repro.nn.registry` for the builders.
"""

from repro.nn.module import Module, ModuleList, Parameter, Sequential
from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    GELU,
    Identity,
    LayerNorm,
    Linear,
    ReLU,
    ReLU6,
)
from repro.nn.registry import MODEL_REGISTRY, build_model, list_models

__all__ = [
    "BatchNorm2d",
    "Conv2d",
    "GELU",
    "Identity",
    "LayerNorm",
    "Linear",
    "MODEL_REGISTRY",
    "Module",
    "ModuleList",
    "Parameter",
    "ReLU",
    "ReLU6",
    "Sequential",
    "build_model",
    "list_models",
]

"""Residual CNNs: the ResNet-20/18/34/50 family (scaled for CPU experiments).

The reproductions keep the defining structural features of each variant --
basic vs bottleneck blocks, stage layout, stride-2 downsample shortcuts --
while shrinking channel widths so training and quantization sweeps run on a
CPU.  Channel widths stay multiples of the FlexiQ group size used on the
simulated hardware.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Identity,
    Linear,
    ReLU,
)
from repro.nn.module import Module, ModuleList, Sequential
from repro.tensor import Tensor


def conv_bn_relu(
    in_ch: int,
    out_ch: int,
    kernel: int,
    stride: int = 1,
    rng: Optional[np.random.Generator] = None,
) -> Sequential:
    """Conv -> BN -> ReLU building block."""
    return Sequential(
        Conv2d(in_ch, out_ch, kernel, stride=stride, padding=kernel // 2,
               bias=False, rng=rng),
        BatchNorm2d(out_ch),
        ReLU(),
    )


class BasicBlock(Module):
    """Two 3x3 convolutions with a residual connection (ResNet-18/20/34)."""

    expansion = 1

    def __init__(
        self,
        in_ch: int,
        out_ch: int,
        stride: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.conv1 = Conv2d(in_ch, out_ch, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(out_ch)
        self.relu = ReLU()
        self.conv2 = Conv2d(out_ch, out_ch, 3, stride=1, padding=1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(out_ch)
        if stride != 1 or in_ch != out_ch:
            self.downsample = Sequential(
                Conv2d(in_ch, out_ch, 1, stride=stride, bias=False, rng=rng),
                BatchNorm2d(out_ch),
            )
        else:
            self.downsample = Identity()

    def forward(self, x: Tensor) -> Tensor:
        identity = self.downsample(x)
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        return self.relu(out + identity)


class BottleneckBlock(Module):
    """1x1 -> 3x3 -> 1x1 bottleneck with expansion (ResNet-50)."""

    expansion = 4

    def __init__(
        self,
        in_ch: int,
        mid_ch: int,
        stride: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        out_ch = mid_ch * self.expansion
        self.conv1 = Conv2d(in_ch, mid_ch, 1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(mid_ch)
        self.conv2 = Conv2d(mid_ch, mid_ch, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(mid_ch)
        self.conv3 = Conv2d(mid_ch, out_ch, 1, bias=False, rng=rng)
        self.bn3 = BatchNorm2d(out_ch)
        self.relu = ReLU()
        if stride != 1 or in_ch != out_ch:
            self.downsample = Sequential(
                Conv2d(in_ch, out_ch, 1, stride=stride, bias=False, rng=rng),
                BatchNorm2d(out_ch),
            )
        else:
            self.downsample = Identity()

    def forward(self, x: Tensor) -> Tensor:
        identity = self.downsample(x)
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.relu(self.bn2(self.conv2(out)))
        out = self.bn3(self.conv3(out))
        return self.relu(out + identity)


class ResNet(Module):
    """Configurable residual network.

    Parameters
    ----------
    block:
        ``BasicBlock`` or ``BottleneckBlock``.
    stage_blocks:
        Number of residual blocks per stage.
    stage_channels:
        Base channel count per stage (before block expansion).
    num_classes, in_channels, image_size:
        Input/output dimensions of the classifier.
    """

    def __init__(
        self,
        block,
        stage_blocks: Sequence[int],
        stage_channels: Sequence[int],
        num_classes: int = 10,
        in_channels: int = 3,
        stem_channels: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        stem_channels = stem_channels or stage_channels[0]
        self.stem = conv_bn_relu(in_channels, stem_channels, 3, stride=1, rng=rng)
        self.stages = ModuleList()
        in_ch = stem_channels
        for stage_index, (blocks, channels) in enumerate(
            zip(stage_blocks, stage_channels)
        ):
            stage_layers: List[Module] = []
            for block_index in range(blocks):
                stride = 2 if (stage_index > 0 and block_index == 0) else 1
                stage_layers.append(block(in_ch, channels, stride=stride, rng=rng))
                in_ch = channels * block.expansion
            self.stages.append(Sequential(*stage_layers))
        self.pool = GlobalAvgPool2d()
        self.head = Linear(in_ch, num_classes, rng=rng)
        self.num_classes = num_classes

    def forward(self, x: Tensor) -> Tensor:
        x = self.stem(x)
        for stage in self.stages:
            x = stage(x)
        x = self.pool(x)
        return self.head(x)

    def features(self, x: Tensor) -> Tensor:
        """Return pooled features before the classification head."""
        x = self.stem(x)
        for stage in self.stages:
            x = stage(x)
        return self.pool(x)


def resnet20(num_classes: int = 10, width: int = 8,
             rng: Optional[np.random.Generator] = None) -> ResNet:
    """CIFAR-style ResNet-20: three stages of three basic blocks."""
    return ResNet(
        BasicBlock,
        stage_blocks=[3, 3, 3],
        stage_channels=[width, width * 2, width * 4],
        num_classes=num_classes,
        rng=rng,
    )


def resnet18(num_classes: int = 10, width: int = 8,
             rng: Optional[np.random.Generator] = None) -> ResNet:
    """ImageNet-style ResNet-18: four stages of two basic blocks."""
    return ResNet(
        BasicBlock,
        stage_blocks=[2, 2, 2, 2],
        stage_channels=[width, width * 2, width * 4, width * 8],
        num_classes=num_classes,
        rng=rng,
    )


def resnet34(num_classes: int = 10, width: int = 8,
             rng: Optional[np.random.Generator] = None) -> ResNet:
    """ResNet-34: four stages with [3, 4, 6, 3] basic blocks."""
    return ResNet(
        BasicBlock,
        stage_blocks=[3, 4, 6, 3],
        stage_channels=[width, width * 2, width * 4, width * 8],
        num_classes=num_classes,
        rng=rng,
    )


def resnet50(num_classes: int = 10, width: int = 8,
             rng: Optional[np.random.Generator] = None) -> ResNet:
    """ResNet-50: four stages with [3, 4, 6, 3] bottleneck blocks."""
    return ResNet(
        BottleneckBlock,
        stage_blocks=[3, 4, 6, 3],
        stage_channels=[width, width * 2, width * 4, width * 8],
        num_classes=num_classes,
        rng=rng,
    )

"""Core layers: linear, convolution, normalisation and activations."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, functional as F


def _kaiming_uniform(shape, fan_in: int, rng: np.random.Generator) -> np.ndarray:
    bound = float(np.sqrt(6.0 / max(fan_in, 1)))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


class Linear(Module):
    """Fully connected layer ``y = x @ W.T + b``.

    The *feature channels* FlexiQ operates on are the input features
    (``in_features``); the output-channel dimension carries the per-channel
    quantization scales, matching the paper's convention.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            _kaiming_uniform((out_features, in_features), in_features, rng)
        )
        self.bias = (
            Parameter(np.zeros(out_features, dtype=np.float32)) if bias else None
        )

    @property
    def feature_channels(self) -> int:
        """Number of input feature channels (FlexiQ's selection axis)."""
        return self.in_features

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features})"


class Conv2d(Module):
    """2D convolution over (N, C, H, W) inputs."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_channels % groups != 0 or out_channels % groups != 0:
            raise ValueError("channels must be divisible by groups")
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        fan_in = (in_channels // groups) * kernel_size * kernel_size
        self.weight = Parameter(
            _kaiming_uniform(
                (out_channels, in_channels // groups, kernel_size, kernel_size),
                fan_in,
                rng,
            )
        )
        self.bias = (
            Parameter(np.zeros(out_channels, dtype=np.float32)) if bias else None
        )

    @property
    def feature_channels(self) -> int:
        """Number of input feature channels (FlexiQ's selection axis)."""
        return self.in_channels

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(
            x,
            self.weight,
            self.bias,
            stride=self.stride,
            padding=self.padding,
            groups=self.groups,
        )

    def __repr__(self) -> str:
        return (
            f"Conv2d(in={self.in_channels}, out={self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, g={self.groups})"
        )


class BatchNorm2d(Module):
    """Batch normalisation over the channel dimension of (N, C, H, W)."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features, dtype=np.float32))
        self.bias = Parameter(np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))
        # Inference-mode constant cache: with frozen statistics the mean and
        # standard deviation are constants; recomputing and re-wrapping them
        # on every forward is hot-path waste.  The per-element arithmetic
        # (and hence the output, bitwise) is unchanged -- only the small
        # per-channel preamble is cached.  Keyed on the identity of the
        # buffer arrays, so update_buffer() (which rebinds them) invalidates
        # it naturally; weight/bias are not cached so autograd still reaches
        # them in eval mode.
        self._inference_cache = None
        self._inference_src = None

    def _inference_constants(self):
        # Only the frozen statistics are cached; weight/bias stay live
        # Parameters in forward() so eval-mode backward still reaches them.
        src = (self.running_mean, self.running_var)
        if self._inference_cache is None or any(
            cached is not current for cached, current in zip(self._inference_src, src)
        ):
            mean = Tensor(self.running_mean.reshape(1, -1, 1, 1))
            var = Tensor(self.running_var.reshape(1, -1, 1, 1))
            std = (var + self.eps).sqrt()
            self._inference_cache = (mean, std)
            self._inference_src = src
        return self._inference_cache

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mean = x.mean(axis=(0, 2, 3), keepdims=True)
            var = x.var(axis=(0, 2, 3), keepdims=True)
            with np.errstate(all="ignore"):
                new_mean = (
                    (1 - self.momentum) * self.running_mean
                    + self.momentum * mean.data.reshape(-1)
                )
                new_var = (
                    (1 - self.momentum) * self.running_var
                    + self.momentum * var.data.reshape(-1)
                )
            self.update_buffer("running_mean", new_mean)
            self.update_buffer("running_var", new_var)
        else:
            mean, std = self._inference_constants()
            weight = self.weight.reshape(1, self.num_features, 1, 1)
            bias = self.bias.reshape(1, self.num_features, 1, 1)
            return (x - mean) / std * weight + bias
        normalized = (x - mean) / (var + self.eps).sqrt()
        weight = self.weight.reshape(1, self.num_features, 1, 1)
        bias = self.bias.reshape(1, self.num_features, 1, 1)
        return normalized * weight + bias


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.weight = Parameter(np.ones(normalized_shape, dtype=np.float32))
        self.bias = Parameter(np.zeros(normalized_shape, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class ReLU6(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu6(x)


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Flatten(Module):
    """Flatten all dimensions after the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class GlobalAvgPool2d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class AvgPool2d(Module):
    def __init__(self, kernel: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel = kernel
        self.stride = stride or kernel

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel, self.stride)


class MaxPool2d(Module):
    def __init__(self, kernel: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel = kernel
        self.stride = stride or kernel

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel, self.stride)


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, p: float = 0.1) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        mask = (self._rng.random(x.shape) >= self.p).astype(np.float32) / (1.0 - self.p)
        return x * Tensor(mask)

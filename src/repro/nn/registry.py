"""Model zoo mirroring the paper's Table 1.

Each entry maps a paper model (abbreviation in parentheses) to a scaled-down
member of the same architecture family, along with the dataset configuration
used to pre-train it on the synthetic data.  The registry is the single
source of truth for the evaluation scripts and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.nn.layers import Conv2d, Linear
from repro.nn.llm import TinyDecoderLM, tiny_lm
from repro.nn.mobilenet import mobilenet_v2
from repro.nn.module import Module
from repro.nn.resnet import resnet18, resnet20, resnet34, resnet50
from repro.nn.vit import swin, vit


def apply_pretrained_channel_statistics(
    model: Module, rng: np.random.Generator, sigma: float = 0.5
) -> Module:
    """Give weights the per-feature-channel magnitude diversity of real checkpoints.

    FlexiQ's premise (Section 2.3) is an empirical property of publicly
    available pre-trained vision models: the weight parameters connected to
    different *input* (feature) channels of a layer have widely varying value
    ranges, so many channels leave the top bits of an 8-bit representation
    unused.  That diversity emerges from long training on large datasets and
    does not develop in the few-epoch synthetic training used here, so it is
    injected explicitly: every Linear/Conv2d input channel is scaled by a
    log-normal factor at initialisation (before training).  Training then
    proceeds normally; the surrounding normalisation layers absorb the scale
    differences functionally while the heterogeneous channel statistics --
    the property FlexiQ exploits -- persist.  This substitution is recorded
    in DESIGN.md.
    """
    for _, module in model.named_modules():
        if isinstance(module, Linear):
            factors = rng.lognormal(mean=0.0, sigma=sigma, size=module.in_features)
            factors = np.clip(factors, 0.2, 3.0).astype(np.float32)
            module.weight.data = module.weight.data * factors[None, :]
        elif isinstance(module, Conv2d):
            in_per_group = module.in_channels // module.groups
            factors = rng.lognormal(mean=0.0, sigma=sigma, size=in_per_group)
            factors = np.clip(factors, 0.2, 3.0).astype(np.float32)
            module.weight.data = module.weight.data * factors[None, :, None, None]
    return model


@dataclass(frozen=True)
class ModelSpec:
    """Description of one evaluation model.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"resnet18"``.
    abbreviation:
        The short name used in the paper's tables, e.g. ``"RNet18"``.
    family:
        ``"cnn"``, ``"transformer"`` or ``"llm"``.
    dataset:
        Name of the synthetic dataset configuration in :mod:`repro.data`.
    builder:
        Callable producing a fresh, randomly initialised model.
    image_size, num_classes:
        Input geometry for vision models.
    finetune_epochs, learning_rate:
        Default finetuning hyper-parameters (scaled-down analogue of Table 1).
    calibration_size:
        Number of calibration samples used for range estimation.
    """

    name: str
    abbreviation: str
    family: str
    dataset: str
    builder: Callable[..., Module]
    image_size: int = 16
    num_classes: int = 10
    finetune_epochs: int = 2
    learning_rate: float = 1e-2
    calibration_size: int = 64
    # Optional log-normal sigma for init-time per-channel weight scaling.
    # The default pipeline instead uses the function-preserving rebalancing
    # in repro.nn.rebalance (applied after pre-training), so this stays 0.
    channel_heterogeneity: float = 0.0
    extra: Dict = field(default_factory=dict)

    def build(self, seed: int = 0) -> Module:
        """Instantiate the model with a deterministic initialisation.

        The initialisation includes the heterogeneous per-channel weight
        statistics of real pre-trained checkpoints (see
        :func:`apply_pretrained_channel_statistics`); set
        ``channel_heterogeneity`` to 0 to disable.
        """
        rng = np.random.default_rng(seed)
        model = self.builder(rng=rng, **self.extra)
        if self.channel_heterogeneity > 0:
            stats_rng = np.random.default_rng(seed + 101)
            apply_pretrained_channel_statistics(
                model, stats_rng, sigma=self.channel_heterogeneity
            )
        return model


def _cnn_spec(name: str, abbreviation: str, dataset: str, builder, **extra) -> ModelSpec:
    return ModelSpec(
        name=name,
        abbreviation=abbreviation,
        family="cnn",
        dataset=dataset,
        builder=builder,
        extra=extra,
    )


def _transformer_spec(name: str, abbreviation: str, builder, **extra) -> ModelSpec:
    return ModelSpec(
        name=name,
        abbreviation=abbreviation,
        family="transformer",
        dataset="synthetic-imagenet",
        builder=builder,
        calibration_size=64,
        extra=extra,
    )


MODEL_REGISTRY: Dict[str, ModelSpec] = {
    "resnet20": _cnn_spec("resnet20", "RNet20", "synthetic-cifar10", resnet20),
    "resnet18": _cnn_spec("resnet18", "RNet18", "synthetic-imagenet", resnet18),
    "resnet34": _cnn_spec("resnet34", "RNet34", "synthetic-imagenet", resnet34),
    "resnet50": _cnn_spec("resnet50", "RNet50", "synthetic-imagenet", resnet50),
    "mobilenet_v2": _cnn_spec(
        "mobilenet_v2", "MNetV2", "synthetic-imagenet", mobilenet_v2
    ),
    "vit_small": _transformer_spec("vit_small", "ViT-S", vit, variant="small"),
    "vit_base": _transformer_spec("vit_base", "ViT-B", vit, variant="base"),
    "deit_small": _transformer_spec("deit_small", "DeiT-S", vit, variant="small"),
    "deit_base": _transformer_spec("deit_base", "DeiT-B", vit, variant="base"),
    "swin_small": _transformer_spec("swin_small", "Swin-S", swin, variant="small"),
    "swin_base": _transformer_spec("swin_base", "Swin-B", swin, variant="base"),
    "tiny_lm": ModelSpec(
        name="tiny_lm",
        abbreviation="TinyLM",
        family="llm",
        dataset="synthetic-text",
        builder=tiny_lm,
        image_size=0,
        num_classes=0,
        finetune_epochs=2,
        learning_rate=1e-2,
        calibration_size=32,
    ),
}


def list_models(family: Optional[str] = None) -> List[str]:
    """Return registry keys, optionally filtered by family."""
    return [
        name
        for name, spec in MODEL_REGISTRY.items()
        if family is None or spec.family == family
    ]


def get_spec(name: str) -> ModelSpec:
    """Return the :class:`ModelSpec` for ``name`` or raise ``KeyError``."""
    if name not in MODEL_REGISTRY:
        raise KeyError(
            f"unknown model {name!r}; available: {', '.join(sorted(MODEL_REGISTRY))}"
        )
    return MODEL_REGISTRY[name]


def build_model(name: str, seed: int = 0) -> Module:
    """Build a registry model by name with deterministic initialisation."""
    return get_spec(name).build(seed=seed)

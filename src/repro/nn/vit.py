"""Vision transformers: ViT/DeiT and a windowed Swin variant."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.attention import SwinBlock, TransformerBlock
from repro.nn.layers import Conv2d, LayerNorm, Linear
from repro.nn.module import Module, ModuleList, Parameter
from repro.tensor import Tensor


class PatchEmbedding(Module):
    """Split an image into non-overlapping patches and embed each linearly.

    Implemented as a strided convolution (the usual trick), which also makes
    the patch projection a quantizable conv layer -- in the paper the first
    layer stays 8-bit, and the quantization passes here follow the same rule.
    """

    def __init__(
        self,
        image_size: int,
        patch_size: int,
        in_channels: int,
        embed_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if image_size % patch_size != 0:
            raise ValueError("image_size must be divisible by patch_size")
        self.image_size = image_size
        self.patch_size = patch_size
        self.grid_size = image_size // patch_size
        self.num_patches = self.grid_size**2
        self.proj = Conv2d(
            in_channels, embed_dim, patch_size, stride=patch_size, rng=rng
        )

    def forward(self, x: Tensor) -> Tensor:
        n = x.shape[0]
        patches = self.proj(x)  # (N, D, g, g)
        d = patches.shape[1]
        return patches.reshape(n, d, self.num_patches).transpose(0, 2, 1)


class VisionTransformer(Module):
    """ViT/DeiT-style encoder classifier.

    DeiT differs from ViT mainly in its training recipe (distillation); the
    reproduction models both families with this class and distinguishes them
    via configuration (depth/width/heads) in the registry, mirroring how the
    paper treats them as separate checkpoints of the same architecture.
    """

    def __init__(
        self,
        image_size: int = 16,
        patch_size: int = 4,
        in_channels: int = 3,
        embed_dim: int = 32,
        depth: int = 4,
        num_heads: int = 4,
        mlp_ratio: float = 2.0,
        num_classes: int = 10,
        use_cls_token: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.embed_dim = embed_dim
        self.use_cls_token = use_cls_token
        self.patch_embed = PatchEmbedding(
            image_size, patch_size, in_channels, embed_dim, rng=rng
        )
        tokens = self.patch_embed.num_patches + (1 if use_cls_token else 0)
        self.pos_embed = Parameter(
            rng.normal(0.0, 0.02, size=(1, tokens, embed_dim)).astype(np.float32)
        )
        if use_cls_token:
            self.cls_token = Parameter(
                rng.normal(0.0, 0.02, size=(1, 1, embed_dim)).astype(np.float32)
            )
        self.blocks = ModuleList(
            [
                TransformerBlock(embed_dim, num_heads, mlp_ratio, rng=rng)
                for _ in range(depth)
            ]
        )
        self.norm = LayerNorm(embed_dim)
        self.head = Linear(embed_dim, num_classes, rng=rng)
        self.num_classes = num_classes

    def forward(self, x: Tensor) -> Tensor:
        tokens = self.patch_embed(x)
        n = tokens.shape[0]
        if self.use_cls_token:
            cls = Tensor(np.broadcast_to(self.cls_token.data, (n, 1, self.embed_dim)).copy())
            cls = cls + (self.cls_token - self.cls_token.detach())
            tokens = Tensor.concatenate([cls, tokens], axis=1)
        tokens = tokens + self.pos_embed
        for block in self.blocks:
            tokens = block(tokens)
        tokens = self.norm(tokens)
        if self.use_cls_token:
            pooled = tokens[:, 0]
        else:
            pooled = tokens.mean(axis=1)
        return self.head(pooled)


class PatchMerging(Module):
    """Swin patch merging: concatenate 2x2 neighbourhoods and project 4D -> 2D."""

    def __init__(self, embed_dim: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.embed_dim = embed_dim
        self.norm = LayerNorm(embed_dim * 4)
        self.reduction = Linear(embed_dim * 4, embed_dim * 2, bias=False, rng=rng)

    def forward(self, x: Tensor, grid_size: int) -> Tensor:
        n, t, d = x.shape
        grid = x.reshape(n, grid_size, grid_size, d)
        x00 = grid[:, 0::2, 0::2, :]
        x01 = grid[:, 0::2, 1::2, :]
        x10 = grid[:, 1::2, 0::2, :]
        x11 = grid[:, 1::2, 1::2, :]
        merged = Tensor.concatenate([x00, x01, x10, x11], axis=-1)
        merged = merged.reshape(n, (grid_size // 2) ** 2, d * 4)
        return self.reduction(self.norm(merged))


class SwinTransformer(Module):
    """Hierarchical windowed transformer (Swin-style)."""

    def __init__(
        self,
        image_size: int = 16,
        patch_size: int = 2,
        in_channels: int = 3,
        embed_dim: int = 16,
        depths: tuple = (2, 2),
        num_heads: tuple = (2, 4),
        window: int = 4,
        mlp_ratio: float = 2.0,
        num_classes: int = 10,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.patch_embed = PatchEmbedding(
            image_size, patch_size, in_channels, embed_dim, rng=rng
        )
        self.window = window
        grid = self.patch_embed.grid_size
        self.pos_embed = Parameter(
            rng.normal(0.0, 0.02, size=(1, grid * grid, embed_dim)).astype(np.float32)
        )

        self.stages = ModuleList()
        self.mergers = ModuleList()
        dim = embed_dim
        self._stage_grids = []
        for stage_index, (depth, heads) in enumerate(zip(depths, num_heads)):
            blocks = ModuleList(
                [
                    SwinBlock(
                        dim,
                        heads,
                        window=min(window, grid),
                        shift=(i % 2 == 1),
                        mlp_ratio=mlp_ratio,
                        rng=rng,
                    )
                    for i in range(depth)
                ]
            )
            self.stages.append(blocks)
            self._stage_grids.append(grid)
            if stage_index < len(depths) - 1:
                self.mergers.append(PatchMerging(dim, rng=rng))
                dim *= 2
                grid //= 2
        self.norm = LayerNorm(dim)
        self.head = Linear(dim, num_classes, rng=rng)
        self.num_classes = num_classes

    def forward(self, x: Tensor) -> Tensor:
        tokens = self.patch_embed(x) + self.pos_embed
        for stage_index, blocks in enumerate(self.stages):
            grid = self._stage_grids[stage_index]
            for block in blocks:
                tokens = block(tokens, grid)
            if stage_index < len(self.mergers):
                tokens = self.mergers[stage_index](tokens, grid)
        tokens = self.norm(tokens)
        pooled = tokens.mean(axis=1)
        return self.head(pooled)


def vit(
    variant: str = "small",
    image_size: int = 16,
    num_classes: int = 10,
    rng: Optional[np.random.Generator] = None,
) -> VisionTransformer:
    """Build a ViT/DeiT family model (variants: tiny/small/base)."""
    configs = {
        "tiny": dict(embed_dim=16, depth=2, num_heads=2),
        "small": dict(embed_dim=32, depth=3, num_heads=4),
        "base": dict(embed_dim=48, depth=4, num_heads=4),
    }
    if variant not in configs:
        raise ValueError(f"unknown ViT variant {variant!r}")
    return VisionTransformer(
        image_size=image_size,
        patch_size=4,
        num_classes=num_classes,
        rng=rng,
        **configs[variant],
    )


def swin(
    variant: str = "small",
    image_size: int = 16,
    num_classes: int = 10,
    rng: Optional[np.random.Generator] = None,
) -> SwinTransformer:
    """Build a Swin family model (variants: small/base)."""
    configs = {
        "small": dict(embed_dim=24, depths=(2, 2), num_heads=(2, 4)),
        "base": dict(embed_dim=24, depths=(2, 4), num_heads=(2, 4)),
    }
    if variant not in configs:
        raise ValueError(f"unknown Swin variant {variant!r}")
    return SwinTransformer(
        image_size=image_size,
        patch_size=2,
        window=4,
        num_classes=num_classes,
        rng=rng,
        **configs[variant],
    )

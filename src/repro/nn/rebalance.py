"""Function-preserving channel-scale rebalancing.

FlexiQ's premise (Section 2.3) is an empirical property of publicly available
pre-trained vision models: the weights connected to different *feature*
(input) channels of a layer span widely different value ranges, leaving the
top bits of an 8-bit representation unused for many channels.  That diversity
develops over long training on large datasets and does not emerge in the
short synthetic training used by this reproduction.

``rebalance_channel_scales`` injects the property *without changing the
model's function*: for every (normalisation -> activation -> linear/conv)
pair inside a block, the normalisation's per-channel affine output is scaled
by ``1/s_c`` and the consumer's corresponding weight input-channel by
``s_c``, with ``s_c`` drawn from a log-normal distribution.  Because ReLU is
positively homogeneous and the normalisation's affine parameters absorb the
inverse factor exactly, the network computes the same outputs bit-for-bit in
float -- only the split of each channel's dynamic range between activations
and weights changes, which is precisely the statistic quantization sees.
This mirrors how scale-migration techniques (e.g. SmoothQuant) move range
between activations and weights, applied here in reverse as a statistics
substitution documented in DESIGN.md.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.attention import TransformerBlock, SwinBlock
from repro.nn.layers import BatchNorm2d, Conv2d, LayerNorm, Linear
from repro.nn.llm import DecoderBlock
from repro.nn.module import Module
from repro.nn.resnet import BasicBlock, BottleneckBlock


def _sample_factors(rng: np.random.Generator, size: int, sigma: float) -> np.ndarray:
    factors = rng.lognormal(mean=0.0, sigma=sigma, size=size)
    return np.clip(factors, 0.25, 4.0).astype(np.float32)


def _scale_norm_down(norm, factors: np.ndarray) -> None:
    """Divide a BatchNorm/LayerNorm affine output by per-channel factors."""
    norm.weight.data = norm.weight.data / factors
    norm.bias.data = norm.bias.data / factors


def _scale_linear_inputs(layer: Linear, factors: np.ndarray) -> None:
    layer.weight.data = layer.weight.data * factors[None, :]


def _scale_conv_inputs(layer: Conv2d, factors: np.ndarray) -> None:
    if layer.groups != 1:
        raise ValueError("rebalancing grouped convolutions is not supported")
    layer.weight.data = layer.weight.data * factors[None, :, None, None]


def _rebalance_transformer_block(block, rng: np.random.Generator, sigma: float) -> None:
    """norm1 -> q/k/v projections and norm2 -> mlp.fc1 (exact: no nonlinearity)."""
    embed_dim = block.attn.attn.q_proj.in_features if isinstance(block, SwinBlock) else block.attn.q_proj.in_features
    attn = block.attn.attn if isinstance(block, SwinBlock) else block.attn
    factors = _sample_factors(rng, embed_dim, sigma)
    _scale_norm_down(block.norm1, factors)
    for proj in (attn.q_proj, attn.k_proj, attn.v_proj):
        _scale_linear_inputs(proj, factors)

    factors2 = _sample_factors(rng, block.mlp.fc1.in_features, sigma)
    _scale_norm_down(block.norm2, factors2)
    _scale_linear_inputs(block.mlp.fc1, factors2)


def _rebalance_basic_block(block: BasicBlock, rng: np.random.Generator, sigma: float) -> None:
    """bn1 -> ReLU -> conv2 (exact: ReLU is positively homogeneous)."""
    factors = _sample_factors(rng, block.conv2.in_channels, sigma)
    _scale_norm_down(block.bn1, factors)
    _scale_conv_inputs(block.conv2, factors)


def _rebalance_bottleneck_block(
    block: BottleneckBlock, rng: np.random.Generator, sigma: float
) -> None:
    """bn1 -> ReLU -> conv2 and bn2 -> ReLU -> conv3."""
    factors1 = _sample_factors(rng, block.conv2.in_channels, sigma)
    _scale_norm_down(block.bn1, factors1)
    _scale_conv_inputs(block.conv2, factors1)
    factors2 = _sample_factors(rng, block.conv3.in_channels, sigma)
    _scale_norm_down(block.bn2, factors2)
    _scale_conv_inputs(block.conv3, factors2)


def rebalance_channel_scales(
    model: Module, sigma: float = 0.6, seed: int = 0
) -> Module:
    """Apply function-preserving per-channel scale rebalancing in place.

    Handled block types: ViT/DeiT :class:`TransformerBlock`, Swin
    :class:`SwinBlock`, LLM :class:`DecoderBlock`, ResNet
    :class:`BasicBlock` / :class:`BottleneckBlock`.  Other structures (e.g.
    MobileNet's ReLU6-clipped inverted residuals, where the transform would
    not be exact) are left untouched.
    """
    if sigma <= 0:
        return model
    rng = np.random.default_rng(seed)
    for _, module in model.named_modules():
        if isinstance(module, (TransformerBlock, SwinBlock, DecoderBlock)):
            _rebalance_transformer_block(module, rng, sigma)
        elif isinstance(module, BottleneckBlock):
            _rebalance_bottleneck_block(module, rng, sigma)
        elif isinstance(module, BasicBlock):
            _rebalance_basic_block(module, rng, sigma)
    return model

"""Small decoder-only language model for the Section 8.10 LLM case study.

The paper applies FlexiQ to OPT-350m / Qwen2.5-0.5B and measures WikiText2
perplexity.  Neither the checkpoints nor the dataset are available offline,
so the case study here uses a compact decoder-only transformer trained on a
synthetic character corpus (see :mod:`repro.data.text`).  The quantity being
reproduced is the *ordering* of perplexities across precision settings
(FP < INT8 <= FlexiQ 25..100% << uniform INT4), not absolute values.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.attention import MLP, MultiHeadAttention
from repro.nn.layers import LayerNorm, Linear
from repro.nn.module import Module, ModuleList, Parameter
from repro.tensor import Tensor, functional as F


def causal_mask(seq_len: int) -> np.ndarray:
    """Additive attention mask that blocks attention to future positions."""
    mask = np.full((seq_len, seq_len), -1e9, dtype=np.float32)
    return np.triu(mask, k=1)


class DecoderBlock(Module):
    """Pre-norm causal transformer decoder block."""

    def __init__(
        self,
        embed_dim: int,
        num_heads: int,
        mlp_ratio: float = 2.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.norm1 = LayerNorm(embed_dim)
        self.attn = MultiHeadAttention(embed_dim, num_heads, rng=rng)
        self.norm2 = LayerNorm(embed_dim)
        self.mlp = MLP(embed_dim, int(embed_dim * mlp_ratio), rng=rng)

    def forward(self, x: Tensor, mask: np.ndarray) -> Tensor:
        x = x + self.attn(self.norm1(x), mask=mask)
        x = x + self.mlp(self.norm2(x))
        return x


class TinyDecoderLM(Module):
    """Decoder-only language model with learned positional embeddings."""

    def __init__(
        self,
        vocab_size: int = 64,
        max_seq_len: int = 32,
        embed_dim: int = 32,
        depth: int = 2,
        num_heads: int = 4,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.vocab_size = vocab_size
        self.max_seq_len = max_seq_len
        self.embed_dim = embed_dim
        self.token_embed = Parameter(
            rng.normal(0.0, 0.02, size=(vocab_size, embed_dim)).astype(np.float32)
        )
        self.pos_embed = Parameter(
            rng.normal(0.0, 0.02, size=(1, max_seq_len, embed_dim)).astype(np.float32)
        )
        self.blocks = ModuleList(
            [DecoderBlock(embed_dim, num_heads, rng=rng) for _ in range(depth)]
        )
        self.norm = LayerNorm(embed_dim)
        self.head = Linear(embed_dim, vocab_size, rng=rng)

    def forward(self, token_ids: np.ndarray) -> Tensor:
        """Return logits of shape (N, T, vocab) for integer ids (N, T)."""
        token_ids = np.asarray(token_ids)
        n, t = token_ids.shape
        if t > self.max_seq_len:
            raise ValueError("sequence longer than max_seq_len")
        embeddings = self.token_embed[token_ids.reshape(-1)]
        x = embeddings.reshape(n, t, self.embed_dim) + self.pos_embed[:, :t]
        mask = causal_mask(t)
        for block in self.blocks:
            x = block(x, mask)
        x = self.norm(x)
        return self.head(x)

    def loss(self, token_ids: np.ndarray) -> Tensor:
        """Next-token cross-entropy averaged over all prediction positions."""
        token_ids = np.asarray(token_ids)
        logits = self.forward(token_ids[:, :-1])
        targets = token_ids[:, 1:]
        n, t, v = logits.shape
        return F.cross_entropy(logits.reshape(n * t, v), targets.reshape(-1))

    def perplexity(self, token_ids: np.ndarray, batch_size: int = 16) -> float:
        """Corpus perplexity = exp(mean next-token NLL)."""
        token_ids = np.asarray(token_ids)
        total_nll = 0.0
        total_tokens = 0
        for start in range(0, len(token_ids), batch_size):
            batch = token_ids[start : start + batch_size]
            nll = self.loss(batch).item()
            count = batch.shape[0] * (batch.shape[1] - 1)
            total_nll += nll * count
            total_tokens += count
        return float(np.exp(total_nll / max(total_tokens, 1)))


def tiny_lm(vocab_size: int = 64, rng: Optional[np.random.Generator] = None) -> TinyDecoderLM:
    """Build the default case-study language model."""
    return TinyDecoderLM(vocab_size=vocab_size, rng=rng)

"""MobileNetV2-style network built from inverted residual blocks."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Linear,
    ReLU6,
)
from repro.nn.module import Module, ModuleList, Sequential
from repro.tensor import Tensor


class InvertedResidual(Module):
    """MobileNetV2 inverted residual: expand (1x1) -> depthwise (3x3) -> project (1x1)."""

    def __init__(
        self,
        in_ch: int,
        out_ch: int,
        stride: int,
        expand_ratio: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        hidden = in_ch * expand_ratio
        self.use_residual = stride == 1 and in_ch == out_ch

        layers: List[Module] = []
        if expand_ratio != 1:
            layers += [
                Conv2d(in_ch, hidden, 1, bias=False, rng=rng),
                BatchNorm2d(hidden),
                ReLU6(),
            ]
        layers += [
            Conv2d(hidden, hidden, 3, stride=stride, padding=1, groups=hidden,
                   bias=False, rng=rng),
            BatchNorm2d(hidden),
            ReLU6(),
            Conv2d(hidden, out_ch, 1, bias=False, rng=rng),
            BatchNorm2d(out_ch),
        ]
        self.block = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        out = self.block(x)
        if self.use_residual:
            return out + x
        return out


class MobileNetV2(Module):
    """Scaled-down MobileNetV2 with the standard stage layout."""

    def __init__(
        self,
        num_classes: int = 10,
        in_channels: int = 3,
        width: int = 8,
        stage_config: Optional[Sequence[Tuple[int, int, int, int]]] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        # (expand_ratio, out_channels, num_blocks, stride) per stage.
        stage_config = stage_config or [
            (1, width, 1, 1),
            (4, width * 2, 2, 2),
            (4, width * 4, 2, 2),
            (4, width * 8, 2, 1),
        ]
        self.stem = Sequential(
            Conv2d(in_channels, width, 3, stride=1, padding=1, bias=False, rng=rng),
            BatchNorm2d(width),
            ReLU6(),
        )
        blocks: List[Module] = []
        in_ch = width
        for expand, out_ch, repeats, stride in stage_config:
            for block_index in range(repeats):
                block_stride = stride if block_index == 0 else 1
                blocks.append(
                    InvertedResidual(in_ch, out_ch, block_stride, expand, rng=rng)
                )
                in_ch = out_ch
        self.blocks = ModuleList(blocks)
        last_ch = in_ch * 2
        self.final = Sequential(
            Conv2d(in_ch, last_ch, 1, bias=False, rng=rng),
            BatchNorm2d(last_ch),
            ReLU6(),
        )
        self.pool = GlobalAvgPool2d()
        self.head = Linear(last_ch, num_classes, rng=rng)
        self.num_classes = num_classes

    def forward(self, x: Tensor) -> Tensor:
        x = self.stem(x)
        for block in self.blocks:
            x = block(x)
        x = self.final(x)
        x = self.pool(x)
        return self.head(x)


def mobilenet_v2(num_classes: int = 10, width: int = 8,
                 rng: Optional[np.random.Generator] = None) -> MobileNetV2:
    """Build the scaled MobileNetV2 used by the evaluation."""
    return MobileNetV2(num_classes=num_classes, width=width, rng=rng)

"""Attention primitives and transformer blocks for the vision models."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import Dropout, GELU, LayerNorm, Linear
from repro.nn.module import Module
from repro.tensor import Tensor, functional as F


class MultiHeadAttention(Module):
    """Standard multi-head self-attention with separate Q/K/V projections.

    The projections are kept as three distinct :class:`Linear` layers (rather
    than one fused QKV matrix) because FlexiQ's channel selection and the
    Table 6 layer-error analysis address the Q/K/V projections individually.
    """

    def __init__(
        self,
        embed_dim: int,
        num_heads: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if embed_dim % num_heads != 0:
            raise ValueError("embed_dim must be divisible by num_heads")
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.head_dim = embed_dim // num_heads
        self.q_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.k_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.v_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.out_proj = Linear(embed_dim, embed_dim, rng=rng)

    def _split_heads(self, x: Tensor) -> Tensor:
        """(N, T, D) -> (N, heads, T, head_dim)."""
        n, t, _ = x.shape
        return x.reshape(n, t, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        n, t, _ = x.shape
        q = self._split_heads(self.q_proj(x))
        k = self._split_heads(self.k_proj(x))
        v = self._split_heads(self.v_proj(x))

        scale = 1.0 / float(np.sqrt(self.head_dim))
        scores = q.matmul(k.transpose(0, 1, 3, 2)) * scale
        if mask is not None:
            scores = scores + Tensor(mask.astype(np.float32))
        attn = F.softmax(scores, axis=-1)
        context = attn.matmul(v)  # (N, heads, T, head_dim)
        context = context.transpose(0, 2, 1, 3).reshape(n, t, self.embed_dim)
        return self.out_proj(context)


class MLP(Module):
    """Transformer feed-forward block: Linear -> GELU -> Linear."""

    def __init__(
        self,
        embed_dim: int,
        hidden_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.fc1 = Linear(embed_dim, hidden_dim, rng=rng)
        self.act = GELU()
        self.fc2 = Linear(hidden_dim, embed_dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(self.act(self.fc1(x)))


class TransformerBlock(Module):
    """Pre-norm transformer encoder block (as in ViT/DeiT)."""

    def __init__(
        self,
        embed_dim: int,
        num_heads: int,
        mlp_ratio: float = 2.0,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.norm1 = LayerNorm(embed_dim)
        self.attn = MultiHeadAttention(embed_dim, num_heads, rng=rng)
        self.norm2 = LayerNorm(embed_dim)
        self.mlp = MLP(embed_dim, int(embed_dim * mlp_ratio), rng=rng)
        self.drop = Dropout(dropout)

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        x = x + self.drop(self.attn(self.norm1(x), mask=mask))
        x = x + self.drop(self.mlp(self.norm2(x)))
        return x


def _roll(x: Tensor, shift_h: int, shift_w: int) -> Tensor:
    """Cyclically roll a (N, H, W, D) tensor along its spatial axes."""
    data = np.roll(x.data, shift=(shift_h, shift_w), axis=(1, 2))

    def backward(grad: np.ndarray):
        return (np.roll(grad, shift=(-shift_h, -shift_w), axis=(1, 2)),)

    return Tensor._make(data, (x,), backward)


class WindowAttention(Module):
    """Window-partitioned attention used by the Swin family.

    Tokens are arranged on an (H, W) grid; attention is computed within
    non-overlapping ``window`` x ``window`` windows, optionally with a cyclic
    shift of half a window (the "SW-MSA" variant).
    """

    def __init__(
        self,
        embed_dim: int,
        num_heads: int,
        window: int,
        shift: int = 0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.window = window
        self.shift = shift
        self.attn = MultiHeadAttention(embed_dim, num_heads, rng=rng)

    def forward(self, x: Tensor, grid_size: int) -> Tensor:
        n, t, d = x.shape
        if grid_size * grid_size != t:
            raise ValueError("token count does not form a square grid")
        window = self.window
        if grid_size % window != 0:
            raise ValueError("grid size must be divisible by the window size")

        grid = x.reshape(n, grid_size, grid_size, d)
        if self.shift:
            grid = _roll(grid, -self.shift, -self.shift)

        num_win = grid_size // window
        # (N, num_win, win, num_win, win, D) -> (N*num_win^2, win*win, D)
        windows = grid.reshape(n, num_win, window, num_win, window, d)
        windows = windows.transpose(0, 1, 3, 2, 4, 5)
        windows = windows.reshape(n * num_win * num_win, window * window, d)

        attended = self.attn(windows)

        attended = attended.reshape(n, num_win, num_win, window, window, d)
        attended = attended.transpose(0, 1, 3, 2, 4, 5)
        attended = attended.reshape(n, grid_size, grid_size, d)
        if self.shift:
            attended = _roll(attended, self.shift, self.shift)
        return attended.reshape(n, t, d)


class SwinBlock(Module):
    """Pre-norm Swin block: (shifted) window attention followed by an MLP."""

    def __init__(
        self,
        embed_dim: int,
        num_heads: int,
        window: int,
        shift: bool,
        mlp_ratio: float = 2.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.norm1 = LayerNorm(embed_dim)
        self.attn = WindowAttention(
            embed_dim, num_heads, window, shift=window // 2 if shift else 0, rng=rng
        )
        self.norm2 = LayerNorm(embed_dim)
        self.mlp = MLP(embed_dim, int(embed_dim * mlp_ratio), rng=rng)

    def forward(self, x: Tensor, grid_size: int) -> Tensor:
        x = x + self.attn(self.norm1(x), grid_size)
        x = x + self.mlp(self.norm2(x))
        return x

"""Synthetic character corpus for the LLM case study (Section 8.10).

The corpus is generated from a second-order Markov chain over a small
alphabet with a handful of recurring "phrases", which gives a compressible
structure a tiny decoder LM can learn (perplexity well below the uniform
baseline) while remaining fully offline and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass(frozen=True)
class TextCorpusConfig:
    """Configuration of the synthetic corpus."""

    vocab_size: int = 64
    train_tokens: int = 20_000
    test_tokens: int = 4_000
    seq_len: int = 32
    num_phrases: int = 24
    phrase_len: int = 6
    phrase_prob: float = 0.55
    seed: int = 23


class SyntheticTextCorpus:
    """Token corpus with train/test splits and fixed-length sequence views."""

    def __init__(self, config: TextCorpusConfig = TextCorpusConfig()) -> None:
        self.config = config
        rng = np.random.default_rng(config.seed)
        self._phrases = [
            rng.integers(0, config.vocab_size, size=config.phrase_len)
            for _ in range(config.num_phrases)
        ]
        self.train_tokens = self._generate(rng, config.train_tokens)
        self.test_tokens = self._generate(rng, config.test_tokens)

    def _generate(self, rng: np.random.Generator, length: int) -> np.ndarray:
        cfg = self.config
        tokens: List[int] = []
        while len(tokens) < length:
            if rng.random() < cfg.phrase_prob:
                phrase = self._phrases[rng.integers(0, cfg.num_phrases)]
                tokens.extend(int(t) for t in phrase)
            else:
                tokens.append(int(rng.integers(0, cfg.vocab_size)))
        return np.asarray(tokens[:length], dtype=np.int64)

    def _sequences(self, tokens: np.ndarray) -> np.ndarray:
        seq_len = self.config.seq_len
        count = len(tokens) // seq_len
        return tokens[: count * seq_len].reshape(count, seq_len)

    def train_sequences(self) -> np.ndarray:
        """Return training data as (num_sequences, seq_len) token ids."""
        return self._sequences(self.train_tokens)

    def test_sequences(self) -> np.ndarray:
        """Return held-out data as (num_sequences, seq_len) token ids."""
        return self._sequences(self.test_tokens)

    def train_batches(
        self, batch_size: int, rng: np.random.Generator | None = None
    ) -> List[np.ndarray]:
        """Return shuffled training batches of token-id sequences."""
        sequences = self.train_sequences()
        order = np.arange(len(sequences))
        if rng is not None:
            rng.shuffle(order)
        return [
            sequences[order[start : start + batch_size]]
            for start in range(0, len(order), batch_size)
        ]


def build_text_corpus(seed: int = 23) -> SyntheticTextCorpus:
    """Build the default case-study corpus."""
    return SyntheticTextCorpus(TextCorpusConfig(seed=seed))

"""Datasets, calibration samplers and serving traces.

Offline substitutes for the paper's data dependencies:

* :mod:`repro.data.synthetic` -- class-structured synthetic image datasets
  standing in for CIFAR-10/100 and ImageNet.
* :mod:`repro.data.text` -- a synthetic character corpus standing in for
  WikiText2 in the LLM case study.
* :mod:`repro.data.traces` -- Poisson, fluctuating, diurnal and spike
  request-rate traces standing in for the Azure inference traces used in
  Figures 8 and 9 (and the autoscaling scenarios).
"""

from repro.data.synthetic import DATASET_REGISTRY, SyntheticImageDataset, build_dataset
from repro.data.calibration import CalibrationSampler
from repro.data.traces import (
    DiurnalTrace,
    FluctuatingTrace,
    PoissonTrace,
    RequestTrace,
    SpikeTrace,
    merge_traces,
)

__all__ = [
    "CalibrationSampler",
    "DATASET_REGISTRY",
    "DiurnalTrace",
    "FluctuatingTrace",
    "PoissonTrace",
    "RequestTrace",
    "SpikeTrace",
    "SyntheticImageDataset",
    "build_dataset",
    "merge_traces",
]

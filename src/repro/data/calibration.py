"""Calibration sampling used by range estimation and channel selection."""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np


class CalibrationSampler:
    """Draw small, deterministic calibration batches from a dataset.

    The paper calibrates activation ranges and the channel error scores on a
    small sampled dataset (128--256 images, Table 1); this class wraps that
    sampling so all FlexiQ components see the same calibration set.
    """

    def __init__(
        self,
        images: np.ndarray,
        size: int,
        batch_size: int = 32,
        seed: int = 0,
    ) -> None:
        if size <= 0:
            raise ValueError("calibration size must be positive")
        rng = np.random.default_rng(seed)
        count = min(size, len(images))
        index = rng.choice(len(images), size=count, replace=False)
        self.samples = np.array(images[index], copy=True)
        self.batch_size = int(batch_size)

    def __len__(self) -> int:
        return len(self.samples)

    def batches(self, limit: Optional[int] = None) -> Iterator[np.ndarray]:
        """Yield calibration batches, optionally capped at ``limit`` samples."""
        data = self.samples if limit is None else self.samples[:limit]
        for start in range(0, len(data), self.batch_size):
            yield data[start : start + self.batch_size]

    def all(self) -> np.ndarray:
        """Return the full calibration set as one array."""
        return self.samples

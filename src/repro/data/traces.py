"""Request-arrival traces for the serving experiments (Figures 8 and 9).

Four trace families are provided:

* :class:`PoissonTrace` -- open-loop Poisson arrivals at a fixed average
  rate, used for the latency-vs-rate sweeps in Figure 8.
* :class:`FluctuatingTrace` -- a piecewise-varying rate whose peak is a
  configurable multiple of its minimum (the paper uses 3x, following Azure
  trace statistics), used for the dynamic-adaptation experiment in Figure 9.
* :class:`DiurnalTrace` -- a smooth day/night cycle (sinusoidal rate between
  a night floor and a midday peak), the slow component of production load.
* :class:`SpikeTrace` -- a steady base rate with sudden rectangular bursts,
  the fast component autoscalers exist for.

:func:`merge_traces` superimposes traces (arrival processes add), e.g. a
diurnal cycle plus a spike for the autoscaling scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class RequestTrace:
    """A concrete sequence of request arrival timestamps (seconds)."""

    arrival_times: np.ndarray
    duration: float
    description: str = ""
    # Memoized sorted view keyed by the identity of ``arrival_times``: every
    # run entry needs arrivals sorted, and a million-request trace re-sorted
    # per run dominates small sweeps.  Rebinding ``arrival_times`` (the only
    # supported mutation — the dataclass is otherwise value-like) invalidates
    # the cache via the identity guard.
    _sorted_cache: Optional[Tuple[np.ndarray, np.ndarray]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.arrival_times = np.asarray(self.arrival_times, dtype=np.float64)

    def sorted_arrivals(self) -> np.ndarray:
        """Arrival times sorted ascending, computed once per array binding.

        Returns a shared read-only array: callers treating it as the
        admission schedule (the serving engine does) must not mutate it.
        The cache holds the source array itself as its key, so identity
        (not value) decides freshness — in-place mutation of
        ``arrival_times`` is not supported, rebinding it is.
        """
        if self._sorted_cache is None or self._sorted_cache[0] is not self.arrival_times:
            ordered = np.sort(np.asarray(self.arrival_times, dtype=np.float64))
            ordered.setflags(write=False)
            self._sorted_cache = (self.arrival_times, ordered)
        return self._sorted_cache[1]

    def __len__(self) -> int:
        return len(self.arrival_times)

    @property
    def average_rate(self) -> float:
        """Average arrival rate in requests per second."""
        if self.duration <= 0:
            return 0.0
        return len(self.arrival_times) / self.duration

    def rate_in_window(self, start: float, end: float) -> float:
        """Observed arrival rate within [start, end)."""
        if end <= start:
            return 0.0
        count = int(
            np.count_nonzero(
                (self.arrival_times >= start) & (self.arrival_times < end)
            )
        )
        return count / (end - start)


class PoissonTrace:
    """Generate open-loop Poisson arrivals at a constant average rate."""

    def __init__(self, rate_per_second: float, duration: float, seed: int = 0) -> None:
        if rate_per_second <= 0:
            raise ValueError("rate must be positive")
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.rate = float(rate_per_second)
        self.duration = float(duration)
        self.seed = int(seed)

    def generate(self) -> RequestTrace:
        """Sample inter-arrival gaps until the duration is exhausted."""
        rng = np.random.default_rng(self.seed)
        expected = int(self.rate * self.duration * 1.2) + 16
        gaps = rng.exponential(1.0 / self.rate, size=expected)
        times = np.cumsum(gaps)
        while times[-1] < self.duration:
            extra = rng.exponential(1.0 / self.rate, size=expected)
            times = np.concatenate([times, times[-1] + np.cumsum(extra)])
        times = times[times < self.duration]
        return RequestTrace(
            arrival_times=times,
            duration=self.duration,
            description=f"poisson(rate={self.rate:.0f}/s)",
        )


@dataclass
class FluctuatingTrace:
    """Piecewise-constant fluctuating request rate, peak = ``peak_ratio`` x min.

    The rate profile follows a smooth bursty pattern: it ramps between the
    minimum and the peak over ``num_phases`` phases, echoing the request-rate
    fluctuations of the Azure public traces referenced by the paper.
    """

    min_rate: float
    peak_ratio: float = 3.0
    duration: float = 60.0
    num_phases: int = 12
    seed: int = 0
    # Memoized (parameters, rates): the cache key guards against the stale-
    # cache bug where mutating seed/num_phases/min_rate/peak_ratio after the
    # first phase_rates() call silently returned rates for the old
    # parameters.
    _cache: Optional[Tuple[Tuple[float, float, int, int], List[float]]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def phase_rates(self) -> List[float]:
        """Return the per-phase average rates (requests/second)."""
        key = (
            float(self.min_rate),
            float(self.peak_ratio),
            int(self.num_phases),
            int(self.seed),
        )
        if self._cache is None or self._cache[0] != key:
            rng = np.random.default_rng(self.seed)
            peak = self.min_rate * self.peak_ratio
            # Smooth ramp up/down with jitter, covering min -> peak -> min.
            base = 0.5 * (1 - np.cos(np.linspace(0, 2 * np.pi, self.num_phases)))
            rates = self.min_rate + base * (peak - self.min_rate)
            jitter = rng.uniform(0.92, 1.08, size=self.num_phases)
            self._cache = (
                key,
                list(np.clip(rates * jitter, self.min_rate * 0.9, peak * 1.05)),
            )
        return list(self._cache[1])

    def generate(self) -> RequestTrace:
        """Generate arrivals by drawing a Poisson process per phase."""
        rng = np.random.default_rng(self.seed + 1)
        phase_duration = self.duration / self.num_phases
        times: List[np.ndarray] = []
        for phase_index, rate in enumerate(self.phase_rates()):
            start = phase_index * phase_duration
            expected = int(rate * phase_duration * 1.3) + 8
            gaps = rng.exponential(1.0 / rate, size=expected)
            arrivals = start + np.cumsum(gaps)
            arrivals = arrivals[arrivals < start + phase_duration]
            times.append(arrivals)
        all_times = np.sort(np.concatenate(times))
        return RequestTrace(
            arrival_times=all_times,
            duration=self.duration,
            description=(
                f"fluctuating(min={self.min_rate:.0f}/s, peak_ratio={self.peak_ratio:.1f})"
            ),
        )


def _piecewise_poisson(
    rates: Sequence[float], phase_duration: float, rng: np.random.Generator
) -> np.ndarray:
    """Arrivals of a piecewise-constant-rate Poisson process, sorted."""
    times: List[np.ndarray] = []
    for phase_index, rate in enumerate(rates):
        if rate <= 0:
            continue
        start = phase_index * phase_duration
        expected = int(rate * phase_duration * 1.3) + 8
        gaps = rng.exponential(1.0 / rate, size=expected)
        arrivals = start + np.cumsum(gaps)
        while arrivals[-1] < start + phase_duration:
            extra = rng.exponential(1.0 / rate, size=expected)
            arrivals = np.concatenate([arrivals, arrivals[-1] + np.cumsum(extra)])
        times.append(arrivals[arrivals < start + phase_duration])
    if not times:
        return np.zeros(0, dtype=np.float64)
    return np.sort(np.concatenate(times))


@dataclass(frozen=True)
class DiurnalTrace:
    """Day/night request-rate cycle: sinusoid between a floor and a peak.

    The rate at time ``t`` is ``night_rate + (peak_rate - night_rate) *
    0.5 * (1 - cos(2 pi t / period))`` — the floor at ``t = 0`` (midnight),
    the peak half a period in (midday).  ``duration`` may span several
    periods; arrivals are drawn as a piecewise-constant Poisson process over
    ``num_phases`` equal phases, each at the cycle's rate at the phase
    midpoint.  Frozen: regenerating with different parameters means
    constructing a new trace (no stale-cache class of bugs by design).
    """

    night_rate: float
    peak_rate: float
    duration: float = 60.0
    period: float = 60.0
    num_phases: int = 60
    seed: int = 0

    def __post_init__(self) -> None:
        if self.night_rate <= 0 or self.peak_rate < self.night_rate:
            raise ValueError("need 0 < night_rate <= peak_rate")
        if self.duration <= 0 or self.period <= 0 or self.num_phases < 1:
            raise ValueError("duration, period and num_phases must be positive")

    def rate_at(self, time: float) -> float:
        """Instantaneous arrival rate of the cycle (requests/second)."""
        swing = 0.5 * (1.0 - np.cos(2.0 * np.pi * time / self.period))
        return float(self.night_rate + (self.peak_rate - self.night_rate) * swing)

    def phase_rates(self) -> List[float]:
        """Per-phase rates (cycle sampled at each phase midpoint)."""
        phase_duration = self.duration / self.num_phases
        return [
            self.rate_at((index + 0.5) * phase_duration)
            for index in range(self.num_phases)
        ]

    def generate(self) -> RequestTrace:
        rng = np.random.default_rng(self.seed)
        times = _piecewise_poisson(
            self.phase_rates(), self.duration / self.num_phases, rng
        )
        return RequestTrace(
            arrival_times=times,
            duration=self.duration,
            description=(
                f"diurnal(night={self.night_rate:.0f}/s, "
                f"peak={self.peak_rate:.0f}/s, period={self.period:.0f}s)"
            ),
        )


@dataclass(frozen=True)
class SpikeTrace:
    """Steady base load with a sudden rectangular burst.

    Arrivals run at ``base_rate`` over the whole trace; during
    ``[spike_start, spike_start + spike_duration)`` an *additional*
    ``spike_rate - base_rate`` Poisson process is superimposed, jumping the
    total rate to ``spike_rate`` with no ramp — the flash-crowd shape that
    defeats purely reactive capacity if it reacts too slowly.
    """

    base_rate: float
    spike_rate: float
    spike_start: float
    spike_duration: float
    duration: float = 60.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_rate <= 0 or self.spike_rate < self.base_rate:
            raise ValueError("need 0 < base_rate <= spike_rate")
        if self.duration <= 0 or self.spike_duration <= 0:
            raise ValueError("duration and spike_duration must be positive")
        if not 0 <= self.spike_start <= self.duration:
            raise ValueError("spike_start must lie within the trace")

    def rate_at(self, time: float) -> float:
        """Instantaneous arrival rate (requests/second)."""
        in_spike = self.spike_start <= time < self.spike_start + self.spike_duration
        return float(self.spike_rate if in_spike else self.base_rate)

    def generate(self) -> RequestTrace:
        rng = np.random.default_rng(self.seed)
        base = _piecewise_poisson([self.base_rate], self.duration, rng)
        extra_rate = self.spike_rate - self.base_rate
        if extra_rate > 0:
            span = min(self.spike_duration, self.duration - self.spike_start)
            burst = self.spike_start + _piecewise_poisson([extra_rate], span, rng)
            times = np.sort(np.concatenate([base, burst]))
        else:
            times = base
        return RequestTrace(
            arrival_times=times,
            duration=self.duration,
            description=(
                f"spike(base={self.base_rate:.0f}/s, "
                f"spike={self.spike_rate:.0f}/s @ "
                f"{self.spike_start:.0f}s+{self.spike_duration:.0f}s)"
            ),
        )


def merge_traces(*traces: RequestTrace, duration: Optional[float] = None) -> RequestTrace:
    """Superimpose arrival processes (Poisson processes add rates).

    ``duration`` defaults to the longest input's; descriptions are joined
    with ``" + "``.
    """
    if not traces:
        raise ValueError("merge_traces needs at least one trace")
    times = np.sort(
        np.concatenate([np.asarray(t.arrival_times, dtype=np.float64) for t in traces])
    )
    merged_duration = (
        max(t.duration for t in traces) if duration is None else float(duration)
    )
    return RequestTrace(
        arrival_times=times,
        duration=merged_duration,
        description=" + ".join(t.description for t in traces if t.description),
    )

"""Request-arrival traces for the serving experiments (Figures 8 and 9).

Two trace families are provided:

* :class:`PoissonTrace` -- open-loop Poisson arrivals at a fixed average
  rate, used for the latency-vs-rate sweeps in Figure 8.
* :class:`FluctuatingTrace` -- a piecewise-varying rate whose peak is a
  configurable multiple of its minimum (the paper uses 3x, following Azure
  trace statistics), used for the dynamic-adaptation experiment in Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np


@dataclass
class RequestTrace:
    """A concrete sequence of request arrival timestamps (seconds)."""

    arrival_times: np.ndarray
    duration: float
    description: str = ""

    def __post_init__(self) -> None:
        self.arrival_times = np.asarray(self.arrival_times, dtype=np.float64)

    def __len__(self) -> int:
        return len(self.arrival_times)

    @property
    def average_rate(self) -> float:
        """Average arrival rate in requests per second."""
        if self.duration <= 0:
            return 0.0
        return len(self.arrival_times) / self.duration

    def rate_in_window(self, start: float, end: float) -> float:
        """Observed arrival rate within [start, end)."""
        if end <= start:
            return 0.0
        count = int(
            np.count_nonzero(
                (self.arrival_times >= start) & (self.arrival_times < end)
            )
        )
        return count / (end - start)


class PoissonTrace:
    """Generate open-loop Poisson arrivals at a constant average rate."""

    def __init__(self, rate_per_second: float, duration: float, seed: int = 0) -> None:
        if rate_per_second <= 0:
            raise ValueError("rate must be positive")
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.rate = float(rate_per_second)
        self.duration = float(duration)
        self.seed = int(seed)

    def generate(self) -> RequestTrace:
        """Sample inter-arrival gaps until the duration is exhausted."""
        rng = np.random.default_rng(self.seed)
        expected = int(self.rate * self.duration * 1.2) + 16
        gaps = rng.exponential(1.0 / self.rate, size=expected)
        times = np.cumsum(gaps)
        while times[-1] < self.duration:
            extra = rng.exponential(1.0 / self.rate, size=expected)
            times = np.concatenate([times, times[-1] + np.cumsum(extra)])
        times = times[times < self.duration]
        return RequestTrace(
            arrival_times=times,
            duration=self.duration,
            description=f"poisson(rate={self.rate:.0f}/s)",
        )


@dataclass
class FluctuatingTrace:
    """Piecewise-constant fluctuating request rate, peak = ``peak_ratio`` x min.

    The rate profile follows a smooth bursty pattern: it ramps between the
    minimum and the peak over ``num_phases`` phases, echoing the request-rate
    fluctuations of the Azure public traces referenced by the paper.
    """

    min_rate: float
    peak_ratio: float = 3.0
    duration: float = 60.0
    num_phases: int = 12
    seed: int = 0
    _phase_rates: List[float] = field(default_factory=list, init=False)

    def phase_rates(self) -> List[float]:
        """Return the per-phase average rates (requests/second)."""
        if not self._phase_rates:
            rng = np.random.default_rng(self.seed)
            peak = self.min_rate * self.peak_ratio
            # Smooth ramp up/down with jitter, covering min -> peak -> min.
            base = 0.5 * (1 - np.cos(np.linspace(0, 2 * np.pi, self.num_phases)))
            rates = self.min_rate + base * (peak - self.min_rate)
            jitter = rng.uniform(0.92, 1.08, size=self.num_phases)
            self._phase_rates = list(np.clip(rates * jitter, self.min_rate * 0.9, peak * 1.05))
        return self._phase_rates

    def generate(self) -> RequestTrace:
        """Generate arrivals by drawing a Poisson process per phase."""
        rng = np.random.default_rng(self.seed + 1)
        phase_duration = self.duration / self.num_phases
        times: List[np.ndarray] = []
        for phase_index, rate in enumerate(self.phase_rates()):
            start = phase_index * phase_duration
            expected = int(rate * phase_duration * 1.3) + 8
            gaps = rng.exponential(1.0 / rate, size=expected)
            arrivals = start + np.cumsum(gaps)
            arrivals = arrivals[arrivals < start + phase_duration]
            times.append(arrivals)
        all_times = np.sort(np.concatenate(times))
        return RequestTrace(
            arrival_times=all_times,
            duration=self.duration,
            description=(
                f"fluctuating(min={self.min_rate:.0f}/s, peak_ratio={self.peak_ratio:.1f})"
            ),
        )

"""Synthetic image-classification datasets.

The generator produces class-conditional images from a mixture of spatial
basis patterns: each class owns a set of low-frequency prototypes, and every
sample is a noisy, randomly scaled blend of its class prototypes.  The
resulting datasets

* are learnable by the scaled-down model zoo to well above chance accuracy,
* contain per-channel statistics with diverse dynamic ranges (the property
  FlexiQ exploits), and
* are fully deterministic given a seed, so every benchmark run reproduces
  the same numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

import numpy as np


@dataclass(frozen=True)
class DatasetConfig:
    """Configuration of a synthetic image dataset."""

    name: str
    num_classes: int = 10
    image_size: int = 16
    channels: int = 3
    train_size: int = 512
    test_size: int = 256
    noise_scale: float = 0.35
    prototypes_per_class: int = 3
    seed: int = 7


class SyntheticImageDataset:
    """Deterministic class-conditional image dataset with batching helpers."""

    def __init__(self, config: DatasetConfig) -> None:
        self.config = config
        rng = np.random.default_rng(config.seed)
        self._prototypes = self._make_prototypes(rng)
        self.train_images, self.train_labels = self._sample(rng, config.train_size)
        self.test_images, self.test_labels = self._sample(rng, config.test_size)

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def _make_prototypes(self, rng: np.random.Generator) -> np.ndarray:
        """Build per-class prototype images from smooth random fields."""
        cfg = self.config
        size = cfg.image_size
        yy, xx = np.meshgrid(np.linspace(0, 1, size), np.linspace(0, 1, size))
        prototypes = np.zeros(
            (cfg.num_classes, cfg.prototypes_per_class, cfg.channels, size, size),
            dtype=np.float32,
        )
        for cls in range(cfg.num_classes):
            for proto in range(cfg.prototypes_per_class):
                for channel in range(cfg.channels):
                    freq_x = rng.integers(1, 4)
                    freq_y = rng.integers(1, 4)
                    phase = rng.uniform(0, 2 * np.pi)
                    amplitude = rng.uniform(0.5, 1.5)
                    pattern = amplitude * np.sin(
                        2 * np.pi * (freq_x * xx + freq_y * yy) + phase
                    )
                    blob_x, blob_y = rng.uniform(0.2, 0.8, size=2)
                    blob = np.exp(-(((xx - blob_x) ** 2 + (yy - blob_y) ** 2) / 0.05))
                    prototypes[cls, proto, channel] = pattern + 1.5 * blob
        return prototypes

    def _sample(
        self, rng: np.random.Generator, count: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        cfg = self.config
        labels = rng.integers(0, cfg.num_classes, size=count)
        images = np.zeros(
            (count, cfg.channels, cfg.image_size, cfg.image_size), dtype=np.float32
        )
        for index, label in enumerate(labels):
            weights = rng.dirichlet(np.ones(cfg.prototypes_per_class))
            blend = np.tensordot(weights, self._prototypes[label], axes=1)
            scale = rng.uniform(0.8, 1.2)
            noise = rng.normal(0.0, cfg.noise_scale, size=blend.shape)
            images[index] = scale * blend + noise
        # Normalise to roughly unit variance per dataset.
        images = (images - images.mean()) / (images.std() + 1e-8)
        return images.astype(np.float32), labels.astype(np.int64)

    # ------------------------------------------------------------------
    # Access helpers
    # ------------------------------------------------------------------
    @property
    def num_classes(self) -> int:
        return self.config.num_classes

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        cfg = self.config
        return (cfg.channels, cfg.image_size, cfg.image_size)

    def train_batches(
        self, batch_size: int, rng: np.random.Generator | None = None
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield shuffled training mini-batches."""
        order = np.arange(len(self.train_labels))
        if rng is not None:
            rng.shuffle(order)
        for start in range(0, len(order), batch_size):
            index = order[start : start + batch_size]
            yield self.train_images[index], self.train_labels[index]

    def test_batches(self, batch_size: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield test mini-batches in order."""
        for start in range(0, len(self.test_labels), batch_size):
            yield (
                self.test_images[start : start + batch_size],
                self.test_labels[start : start + batch_size],
            )

    def calibration_batch(self, size: int) -> np.ndarray:
        """Return the first ``size`` training images for range calibration."""
        return self.train_images[:size]


DATASET_REGISTRY: Dict[str, DatasetConfig] = {
    # CIFAR-10 stand-in: small images, fewer samples.
    "synthetic-cifar10": DatasetConfig(
        name="synthetic-cifar10", num_classes=10, image_size=16,
        train_size=512, test_size=256, seed=11,
    ),
    # CIFAR-100 stand-in: more classes, same geometry.
    "synthetic-cifar100": DatasetConfig(
        name="synthetic-cifar100", num_classes=20, image_size=16,
        train_size=640, test_size=256, seed=13,
    ),
    # ImageNet stand-in: same geometry but a harder noise level, so the
    # accuracy differences between precision settings are visible.
    "synthetic-imagenet": DatasetConfig(
        name="synthetic-imagenet", num_classes=10, image_size=16,
        train_size=512, test_size=256, noise_scale=0.6, seed=17,
    ),
}

_DATASET_CACHE: Dict[str, SyntheticImageDataset] = {}


def build_dataset(name: str, cached: bool = True) -> SyntheticImageDataset:
    """Build (or fetch from cache) a registered synthetic dataset."""
    if name not in DATASET_REGISTRY:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(sorted(DATASET_REGISTRY))}"
        )
    if cached and name in _DATASET_CACHE:
        return _DATASET_CACHE[name]
    dataset = SyntheticImageDataset(DATASET_REGISTRY[name])
    if cached:
        _DATASET_CACHE[name] = dataset
    return dataset

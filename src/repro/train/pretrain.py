"""Pre-trained model cache.

The paper starts from publicly available pre-trained checkpoints; this module
plays that role by training each registry model once on its synthetic dataset
and caching the weights on disk.  All experiments then call
:func:`get_pretrained` so they share identical starting points -- exactly how
the paper's pipeline consumes TorchVision/HuggingFace checkpoints.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro.data.synthetic import SyntheticImageDataset, build_dataset
from repro.data.text import SyntheticTextCorpus, build_text_corpus
from repro.nn.module import Module
from repro.nn.rebalance import rebalance_channel_scales
from repro.nn.registry import ModelSpec, get_spec
from repro.train.loop import TrainingConfig, evaluate_accuracy, train_classifier, train_language_model

# Log-normal sigma of the function-preserving channel-scale rebalancing that
# is applied to every pre-trained checkpoint (see repro.nn.rebalance).  It
# reproduces the per-feature-channel weight-range diversity of real
# pre-trained models without altering the float function.
REBALANCE_SIGMA = 0.6

_DEFAULT_CACHE = Path(
    os.environ.get("REPRO_PRETRAIN_CACHE", Path(__file__).resolve().parents[3] / ".cache" / "pretrained")
)

# In-process cache so repeated get_pretrained() calls inside one pytest run
# do not re-read (or worse, re-train) anything.
_MEMORY_CACHE: Dict[Tuple[str, int], Dict[str, np.ndarray]] = {}


def _cache_path(spec: ModelSpec, epochs: int, cache_dir: Path) -> Path:
    return cache_dir / f"{spec.name}_e{epochs}.npz"


def pretrain_model(
    name: str,
    epochs: Optional[int] = None,
    seed: int = 0,
    cache_dir: Optional[Path] = None,
    force: bool = False,
) -> Module:
    """Train (or load) the pre-trained version of a registry model.

    Weights are cached as ``.npz`` files keyed by model name and epoch count,
    so the expensive training happens at most once per environment.
    """
    spec = get_spec(name)
    epochs = epochs if epochs is not None else default_epochs(spec)
    cache_dir = Path(cache_dir) if cache_dir is not None else _DEFAULT_CACHE
    cache_dir.mkdir(parents=True, exist_ok=True)
    path = _cache_path(spec, epochs, cache_dir)

    model = spec.build(seed=seed)
    memory_key = (spec.name, epochs)
    if not force and memory_key in _MEMORY_CACHE:
        model.load_state_dict(_MEMORY_CACHE[memory_key])
        model.eval()
        return model
    if not force and path.exists():
        state = {key: value for key, value in np.load(path).items()}
        try:
            model.load_state_dict(state)
        except (KeyError, ValueError):
            # Stale cache from an older architecture revision: retrain below.
            path.unlink(missing_ok=True)
        else:
            _MEMORY_CACHE[memory_key] = state
            model.eval()
            return model

    if spec.family == "llm":
        corpus = build_text_corpus()
        batches = corpus.train_batches(batch_size=16, rng=np.random.default_rng(seed))
        train_language_model(model, batches, epochs=epochs, seed=seed)
    else:
        dataset = build_dataset(spec.dataset)
        config = TrainingConfig(epochs=epochs, seed=seed)
        train_classifier(model, dataset, config)

    # Give the checkpoint the per-channel weight-range diversity of real
    # pre-trained models (function-preserving, see repro.nn.rebalance).
    rebalance_channel_scales(model, sigma=REBALANCE_SIGMA, seed=seed + 977)

    state = model.state_dict()
    np.savez(path, **state)
    _MEMORY_CACHE[memory_key] = state
    model.eval()
    return model


def default_epochs(spec: ModelSpec) -> int:
    """Default pre-training budget per model family."""
    if spec.family == "llm":
        return 6
    if spec.family == "transformer":
        return 14
    return 8


def get_pretrained(name: str, epochs: Optional[int] = None, seed: int = 0) -> Module:
    """Return the cached pre-trained model (training it on first use)."""
    return pretrain_model(name, epochs=epochs, seed=seed)


def get_dataset_for(name: str) -> SyntheticImageDataset:
    """Return the dataset a vision registry model was pre-trained on."""
    spec = get_spec(name)
    if spec.family == "llm":
        raise ValueError("tiny_lm uses the text corpus, not an image dataset")
    return build_dataset(spec.dataset)


def get_corpus() -> SyntheticTextCorpus:
    """Return the text corpus used by the LLM case study."""
    return build_text_corpus()


def pretrained_accuracy(name: str, epochs: Optional[int] = None) -> float:
    """Convenience: test accuracy (%) of the cached pre-trained model."""
    model = get_pretrained(name, epochs=epochs)
    dataset = get_dataset_for(name)
    return evaluate_accuracy(model, dataset)

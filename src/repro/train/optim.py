"""Optimizers and learning-rate schedules.

The paper finetunes with SGD (momentum), a step decay of 0.1 every 10 epochs
and a weight decay of 1e-4; the classes here implement exactly those knobs.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.nn.module import Parameter


class SGD:
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update using the accumulated gradients."""
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            velocity *= self.momentum
            velocity += grad
            param.data = param.data - self.lr * velocity


class StepLR:
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: SGD, step_size: int, gamma: float = 0.1) -> None:
        self.optimizer = optimizer
        self.step_size = int(step_size)
        self.gamma = float(gamma)
        self._epoch = 0
        self._base_lr = optimizer.lr

    def step(self) -> None:
        """Advance one epoch and update the optimizer's learning rate."""
        self._epoch += 1
        decays = self._epoch // self.step_size
        self.optimizer.lr = self._base_lr * (self.gamma**decays)

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr


class CosineLR:
    """Cosine decay from the base learning rate to ``min_lr``."""

    def __init__(self, optimizer: SGD, total_epochs: int, min_lr: float = 0.0) -> None:
        self.optimizer = optimizer
        self.total_epochs = max(int(total_epochs), 1)
        self.min_lr = float(min_lr)
        self._epoch = 0
        self._base_lr = optimizer.lr

    def step(self) -> None:
        self._epoch = min(self._epoch + 1, self.total_epochs)
        progress = self._epoch / self.total_epochs
        cosine = 0.5 * (1.0 + np.cos(np.pi * progress))
        self.optimizer.lr = self.min_lr + (self._base_lr - self.min_lr) * cosine

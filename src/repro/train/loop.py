"""Classifier and language-model training loops."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.data.synthetic import SyntheticImageDataset
from repro.nn.module import Module
from repro.tensor import Tensor, functional as F, no_grad
from repro.train.optim import SGD, StepLR


@dataclass
class TrainingConfig:
    """Hyper-parameters for supervised training.

    Defaults mirror the paper's finetuning recipe (SGD, step decay 0.1,
    weight decay 1e-4) at a scale suited to the synthetic datasets.
    """

    epochs: int = 8
    batch_size: int = 32
    learning_rate: float = 5e-2
    momentum: float = 0.9
    weight_decay: float = 1e-4
    lr_step: int = 4
    lr_gamma: float = 0.1
    seed: int = 0
    log_every: int = 0  # 0 disables progress printing


def evaluate_accuracy(
    model: Module, dataset: SyntheticImageDataset, batch_size: int = 64
) -> float:
    """Top-1 accuracy of ``model`` on the dataset's test split (in percent)."""
    model.eval()
    correct = 0
    total = 0
    with no_grad():
        for images, labels in dataset.test_batches(batch_size):
            logits = model(Tensor(images))
            correct += int((logits.data.argmax(axis=-1) == labels).sum())
            total += len(labels)
    return 100.0 * correct / max(total, 1)


def train_classifier(
    model: Module,
    dataset: SyntheticImageDataset,
    config: TrainingConfig = TrainingConfig(),
    loss_fn: Optional[Callable[[Tensor, np.ndarray], Tensor]] = None,
) -> List[float]:
    """Train ``model`` on the dataset's train split; return per-epoch losses."""
    loss_fn = loss_fn or F.cross_entropy
    optimizer = SGD(
        model.parameters(),
        lr=config.learning_rate,
        momentum=config.momentum,
        weight_decay=config.weight_decay,
    )
    scheduler = StepLR(optimizer, step_size=config.lr_step, gamma=config.lr_gamma)
    rng = np.random.default_rng(config.seed)
    epoch_losses: List[float] = []
    model.train()
    for epoch in range(config.epochs):
        losses = []
        for images, labels in dataset.train_batches(config.batch_size, rng=rng):
            optimizer.zero_grad()
            logits = model(Tensor(images))
            loss = loss_fn(logits, labels)
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        scheduler.step()
        epoch_loss = float(np.mean(losses))
        epoch_losses.append(epoch_loss)
        if config.log_every and (epoch + 1) % config.log_every == 0:
            print(f"epoch {epoch + 1}/{config.epochs} loss {epoch_loss:.4f}")
    model.eval()
    return epoch_losses


def train_language_model(
    model: Module,
    batches: List[np.ndarray],
    epochs: int = 4,
    learning_rate: float = 0.1,
    momentum: float = 0.9,
    seed: int = 0,
) -> List[float]:
    """Train a :class:`repro.nn.llm.TinyDecoderLM` on token-id batches."""
    optimizer = SGD(model.parameters(), lr=learning_rate, momentum=momentum)
    rng = np.random.default_rng(seed)
    epoch_losses: List[float] = []
    model.train()
    for _ in range(epochs):
        order = rng.permutation(len(batches))
        losses = []
        for index in order:
            optimizer.zero_grad()
            loss = model.loss(batches[index])
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        epoch_losses.append(float(np.mean(losses)))
    model.eval()
    return epoch_losses

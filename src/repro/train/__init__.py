"""Training infrastructure: optimizers, schedules, losses and loops."""

from repro.train.optim import SGD, StepLR
from repro.train.loop import TrainingConfig, evaluate_accuracy, train_classifier
from repro.train.pretrain import get_pretrained, pretrain_model

__all__ = [
    "SGD",
    "StepLR",
    "TrainingConfig",
    "evaluate_accuracy",
    "get_pretrained",
    "pretrain_model",
    "train_classifier",
]

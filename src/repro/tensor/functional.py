"""Functional neural-network operations built on :class:`repro.tensor.Tensor`.

Convolution is implemented with the classic im2col/col2im transformation so
both the forward and backward passes are expressed as matrix multiplies --
the same structure the quantized kernels in :mod:`repro.hardware.kernels`
use, which keeps the float and integer paths directly comparable.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.tensor.tensor import Tensor


# ----------------------------------------------------------------------
# im2col / col2im
# ----------------------------------------------------------------------
def _unfold_windows(
    x_padded: np.ndarray, out_h: int, out_w: int, kh: int, kw: int, stride: int
) -> np.ndarray:
    """Strided (N, C, out_h, out_w, kh, kw) window view of a padded image."""
    n, c = x_padded.shape[:2]
    strides = x_padded.strides
    return np.lib.stride_tricks.as_strided(
        x_padded,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )


def im2col(
    x: np.ndarray, kernel: Tuple[int, int], stride: int, padding: int
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold ``x`` (N, C, H, W) into columns of shape (N, out_h*out_w, C*kh*kw)."""
    n, c, h, w = x.shape
    kh, kw = kernel
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))

    windows = _unfold_windows(x, out_h, out_w, kh, kw, stride)
    # (N, out_h, out_w, C, kh, kw) -> (N, out_h*out_w, C*kh*kw)
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n, out_h * out_w, c * kh * kw)
    return np.ascontiguousarray(cols), (out_h, out_w)


def im2col_cast(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: int,
    padding: int,
    dtype=np.float64,
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """:func:`im2col` fused with a dtype cast (single gather+convert pass).

    Used by the quantized convolution hot path: the input is quantized
    *before* unfolding (k*k times less data than quantizing the columns) and
    the unavoidable gather copy doubles as the cast to the GEMM dtype.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1
    if padding > 0:
        # Manual zero padding: np.pad's generic machinery costs more than the
        # whole gather for the small images on this hot path.
        padded = np.zeros(
            (n, c, h + 2 * padding, w + 2 * padding), dtype=x.dtype
        )
        padded[:, :, padding : padding + h, padding : padding + w] = x
        x = padded

    windows = _unfold_windows(x, out_h, out_w, kh, kw, stride)
    cols = windows.transpose(0, 2, 3, 1, 4, 5).astype(dtype, order="C")
    return cols.reshape(n, out_h * out_w, c * kh * kw), (out_h, out_w)


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: int,
    padding: int,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back to an image."""
    n, c, h, w = input_shape
    kh, kw = kernel
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    cols = cols.reshape(n, out_h, out_w, c, kh, kw)
    for i in range(kh):
        for j in range(kw):
            padded[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride] += (
                cols[:, :, :, :, i, j].transpose(0, 3, 1, 2)
            )
    if padding > 0:
        return padded[:, :, padding : padding + h, padding : padding + w]
    return padded


# ----------------------------------------------------------------------
# Convolution / linear
# ----------------------------------------------------------------------
def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
) -> Tensor:
    """2D convolution.  ``x``: (N, C, H, W); ``weight``: (O, C/groups, kh, kw)."""
    n, c, h, w = x.shape
    out_ch, in_per_group, kh, kw = weight.shape
    if c != in_per_group * groups:
        raise ValueError(
            f"conv2d channel mismatch: input has {c} channels, "
            f"weight expects {in_per_group * groups}"
        )

    if groups == 1:
        return _conv2d_single(x, weight, bias, stride, padding)

    # Grouped convolution (MobileNet depthwise): run each group independently.
    group_in = c // groups
    group_out = out_ch // groups
    outputs = []
    for g in range(groups):
        xg = x[:, g * group_in : (g + 1) * group_in]
        wg = weight[g * group_out : (g + 1) * group_out]
        bg = bias[g * group_out : (g + 1) * group_out] if bias is not None else None
        outputs.append(_conv2d_single(xg, wg, bg, stride, padding))
    return Tensor.concatenate(outputs, axis=1)


def _conv2d_single(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor],
    stride: int,
    padding: int,
) -> Tensor:
    n, c, h, w = x.shape
    out_ch, _, kh, kw = weight.shape
    cols, (out_h, out_w) = im2col(x.data, (kh, kw), stride, padding)
    w_mat = weight.data.reshape(out_ch, -1)
    out = cols @ w_mat.T  # (N, out_h*out_w, out_ch)
    if bias is not None:
        out = out + bias.data.reshape(1, 1, -1)
    out = out.transpose(0, 2, 1).reshape(n, out_ch, out_h, out_w)

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad: np.ndarray):
        # grad: (N, out_ch, out_h, out_w)
        grad_mat = grad.reshape(n, out_ch, out_h * out_w).transpose(0, 2, 1)
        grad_weight = np.einsum("npo,npk->ok", grad_mat, cols).reshape(weight.shape)
        grad_cols = grad_mat @ w_mat  # (N, out_h*out_w, C*kh*kw)
        grad_x = col2im(grad_cols, x.shape, (kh, kw), stride, padding)
        grads = [grad_x, grad_weight]
        if bias is not None:
            grads.append(grad.sum(axis=(0, 2, 3)))
        return tuple(grads)

    return Tensor._make(out, parents, backward)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine transform ``x @ weight.T + bias``; ``weight``: (out, in)."""
    out = x.matmul(weight.transpose())
    if bias is not None:
        out = out + bias
    return out


# ----------------------------------------------------------------------
# Pooling
# ----------------------------------------------------------------------
def avg_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """Average pooling with square window."""
    stride = stride or kernel
    n, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    cols, _ = im2col(
        x.data.reshape(n * c, 1, h, w), (kernel, kernel), stride, 0
    )
    out = cols.mean(axis=2).reshape(n, c, out_h, out_w)

    def backward(grad: np.ndarray):
        grad_cols = np.repeat(
            grad.reshape(n * c, out_h * out_w, 1), kernel * kernel, axis=2
        ) / (kernel * kernel)
        grad_x = col2im(grad_cols, (n * c, 1, h, w), (kernel, kernel), stride, 0)
        return (grad_x.reshape(x.shape),)

    return Tensor._make(out, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Pool each (H, W) plane down to a single value: (N, C, H, W) -> (N, C)."""
    return x.mean(axis=(2, 3))


def max_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling with square window."""
    stride = stride or kernel
    n, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    cols, _ = im2col(x.data.reshape(n * c, 1, h, w), (kernel, kernel), stride, 0)
    argmax = cols.argmax(axis=2)
    out = np.take_along_axis(cols, argmax[:, :, None], axis=2)[:, :, 0]
    out = out.reshape(n, c, out_h, out_w)

    def backward(grad: np.ndarray):
        grad_cols = np.zeros_like(cols)
        np.put_along_axis(
            grad_cols, argmax[:, :, None],
            grad.reshape(n * c, out_h * out_w, 1), axis=2,
        )
        grad_x = col2im(grad_cols, (n * c, 1, h, w), (kernel, kernel), stride, 0)
        return (grad_x.reshape(x.shape),)

    return Tensor._make(out, (x,), backward)


# ----------------------------------------------------------------------
# Activations and normalisation helpers
# ----------------------------------------------------------------------
def relu(x: Tensor) -> Tensor:
    return x.relu()


def gelu(x: Tensor) -> Tensor:
    """GELU with the tanh approximation used by most vision transformers."""
    c = float(np.sqrt(2.0 / np.pi))
    inner = (x + x * x * x * 0.044715) * c
    return x * 0.5 * (inner.tanh() + 1.0)


def silu(x: Tensor) -> Tensor:
    return x * x.sigmoid()


def relu6(x: Tensor) -> Tensor:
    return x.clip(0.0, 6.0)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def layer_norm(
    x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5
) -> Tensor:
    """Layer normalisation over the last dimension."""
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    normalized = (x - mean) / (var + eps).sqrt()
    return normalized * weight + bias


# ----------------------------------------------------------------------
# Losses
# ----------------------------------------------------------------------
def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, classes) and integer labels."""
    targets = np.asarray(targets)
    log_probs = log_softmax(logits, axis=-1)
    n = logits.shape[0]
    picked = log_probs[np.arange(n), targets]
    return -picked.mean()


def soft_cross_entropy(logits: Tensor, soft_targets: np.ndarray) -> Tensor:
    """Cross-entropy against a probability distribution (distillation loss)."""
    soft_targets = np.asarray(soft_targets, dtype=np.float32)
    log_probs = log_softmax(logits, axis=-1)
    return -(log_probs * Tensor(soft_targets)).sum(axis=-1).mean()


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    diff = prediction - (target if isinstance(target, Tensor) else Tensor(target))
    return (diff * diff).mean()


def accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Top-1 classification accuracy in [0, 1]."""
    logits = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    predictions = logits.argmax(axis=-1)
    return float((predictions == np.asarray(targets)).mean())

"""Reverse-mode autodiff over NumPy arrays.

The :class:`Tensor` class records a dynamic computation graph: every
operation stores its parent tensors and a closure that accumulates gradients
into them.  Calling :meth:`Tensor.backward` performs a topological sort and
runs the closures in reverse order.

Only float arrays participate in differentiation; integer tensors (used by
the quantization kernels) can be wrapped but never require gradients.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradient information."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager that disables graph recording (like ``torch.no_grad``)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after a broadcasted operation."""
    if grad.shape == shape:
        return grad
    # Sum out any leading dimensions added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dimensions that were expanded from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed tensor with reverse-mode automatic differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 100  # ensure ndarray + Tensor dispatches to Tensor

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        array = np.asarray(data)
        if array.dtype == np.float64:
            array = array.astype(np.float32)
        self.data: np.ndarray = array
        self.requires_grad: bool = bool(requires_grad) and _GRAD_ENABLED
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def astype(self, dtype) -> "Tensor":
        return Tensor(self.data.astype(dtype), requires_grad=False)

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad_flag})"

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = np.asarray(grad, dtype=np.float32)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data, dtype=np.float32)
        grad = np.asarray(grad, dtype=np.float32).reshape(self.data.shape)

        # Topological order of the graph reachable from this tensor.
        order: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        grads = {id(self): grad}
        self._accumulate(grad)
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None or node._backward is None:
                continue
            parent_grads = node._backward(node_grad)
            if parent_grads is None:
                continue
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                pgrad = np.asarray(pgrad, dtype=np.float32)
                parent._accumulate(pgrad)
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pgrad
                else:
                    grads[key] = pgrad

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(value: ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data + other.data

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad, self.shape),
                _unbroadcast(grad, other.shape),
            )

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data - other.data

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad, self.shape),
                _unbroadcast(-grad, other.shape),
            )

        return Tensor._make(data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data * other.data

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad * other.data, self.shape),
                _unbroadcast(grad * self.data, other.shape),
            )

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data / other.data

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad / other.data, self.shape),
                _unbroadcast(-grad * self.data / (other.data**2), other.shape),
            )

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad: np.ndarray):
            return (-grad,)

        return Tensor._make(data, (self,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        data = self.data**exponent

        def backward(grad: np.ndarray):
            return (grad * exponent * self.data ** (exponent - 1),)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Comparisons (no gradients)
    # ------------------------------------------------------------------
    def __gt__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        return Tensor(self.data > other.data)

    def __lt__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        return Tensor(self.data < other.data)

    def __ge__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        return Tensor(self.data >= other.data)

    def __le__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        return Tensor(self.data <= other.data)

    # ------------------------------------------------------------------
    # Matrix multiplication
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        other = self._coerce(other)
        data = self.data @ other.data

        def backward(grad: np.ndarray):
            a, b = self.data, other.data
            if a.ndim == 2 and b.ndim == 2:
                return (grad @ b.T, a.T @ grad)
            # Batched matmul: contract over batch dims for each operand.
            grad_a = grad @ np.swapaxes(b, -1, -2)
            grad_b = np.swapaxes(a, -1, -2) @ grad
            return (
                _unbroadcast(grad_a, a.shape),
                _unbroadcast(grad_b, b.shape),
            )

        return Tensor._make(data, (self, other), backward)

    __matmul__ = matmul

    # ------------------------------------------------------------------
    # Unary math
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray):
            return (grad * data,)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray):
            return (grad / self.data,)

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(grad: np.ndarray):
            return (grad * 0.5 / np.maximum(data, 1e-12),)

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray):
            return (grad * (1.0 - data**2),)

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray):
            return (grad * data * (1.0 - data),)

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(grad: np.ndarray):
            return (grad * mask,)

        return Tensor._make(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray):
            return (grad * mask,)

        return Tensor._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)
        sign = np.sign(self.data)

        def backward(grad: np.ndarray):
            return (grad * sign,)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray):
            if axis is None:
                return (np.broadcast_to(grad, self.shape).copy(),)
            grad_expanded = grad
            if not keepdims:
                grad_expanded = np.expand_dims(grad, axis=axis)
            return (np.broadcast_to(grad_expanded, self.shape).copy(),)

        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = 1
            for ax in axes:
                count *= self.shape[ax]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False, eps: float = 0.0) -> "Tensor":
        mean = self.mean(axis=axis, keepdims=True)
        centered = self - mean
        squared = centered * centered
        return squared.mean(axis=axis, keepdims=keepdims) + eps

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray):
            if axis is None:
                mask = (self.data == self.data.max()).astype(np.float32)
                mask /= mask.sum()
                return (mask * grad,)
            expanded = data if keepdims else np.expand_dims(data, axis=axis)
            mask = (self.data == expanded).astype(np.float32)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            grad_expanded = grad if keepdims else np.expand_dims(grad, axis=axis)
            return (mask * grad_expanded,)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original_shape = self.shape

        def backward(grad: np.ndarray):
            return (grad.reshape(original_shape),)

        return Tensor._make(data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray):
            return (grad.transpose(inverse),)

        return Tensor._make(data, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(*axes)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]
        original_shape = self.shape

        def backward(grad: np.ndarray):
            full = np.zeros(original_shape, dtype=np.float32)
            np.add.at(full, index, grad)
            return (full,)

        return Tensor._make(data, (self,), backward)

    def pad(self, pad_width) -> "Tensor":
        data = np.pad(self.data, pad_width)
        slices = tuple(
            slice(before, before + size)
            for (before, _after), size in zip(pad_width, self.shape)
        )

        def backward(grad: np.ndarray):
            return (grad[slices],)

        return Tensor._make(data, (self,), backward)

    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._coerce(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]

        def backward(grad: np.ndarray):
            grads = []
            start = 0
            for size in sizes:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, start + size)
                grads.append(grad[tuple(index)])
                start += size
            return tuple(grads)

        return Tensor._make(data, tuple(tensors), backward)

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._coerce(t) for t in tensors]
        data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray):
            return tuple(np.take(grad, i, axis=axis) for i in range(len(tensors)))

        return Tensor._make(data, tuple(tensors), backward)

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=np.float32), requires_grad=requires_grad)

    @staticmethod
    def ones(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape, dtype=np.float32), requires_grad=requires_grad)

    @staticmethod
    def randn(shape, rng: Optional[np.random.Generator] = None, scale: float = 1.0,
              requires_grad: bool = False) -> "Tensor":
        rng = rng or np.random.default_rng()
        return Tensor(
            rng.normal(0.0, scale, size=shape).astype(np.float32),
            requires_grad=requires_grad,
        )

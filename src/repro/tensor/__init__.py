"""Minimal reverse-mode autodiff tensor library on top of NumPy.

This module replaces PyTorch for the purposes of the reproduction: it
provides a :class:`Tensor` type with broadcasting-aware gradients, the small
set of operators needed by convolutional and transformer vision models, and
functional helpers (convolution, pooling, attention primitives, losses).

The design goal is correctness and readability rather than raw speed -- the
model zoo in :mod:`repro.nn` is sized so that end-to-end experiments stay
fast on a CPU.
"""

from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor import functional

__all__ = ["Tensor", "functional", "no_grad", "is_grad_enabled"]

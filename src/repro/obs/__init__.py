"""repro.obs — observability for the serving stack: traces, metrics, SLOs.

A cross-cutting, opt-in subsystem wired through the engine, cluster,
generation and resilience layers.  Engines run bit-identically with it
disabled (``tracer=None`` everywhere); enabled, it answers *why* a p99
breached or an attainment SLO dipped, not just *that* it did.

Span taxonomy
-------------
The :class:`~repro.obs.tracing.Tracer` records typed spans into a
columnar :class:`~repro.obs.tracing.SpanStore` (structure-of-arrays,
matching the engine's ``RequestStore`` design).  Kinds:

===========  =========  ===========================================================
kind         shape      meaning
===========  =========  ===========================================================
``queued``    duration  request waiting: arrival → batch start (or drop time)
``execute``   duration  a batch occupying a server: start → finish
``iteration`` duration  one generation iteration (continuous batching)
``preempted`` duration  a killed execution, truncated at the kill instant
``served``    instant   terminal: request completed (value = latency)
``dropped``   instant   terminal: request expired in queue (value = wait)
``migrate``   instant   hop: first requeue off a preempted/failed server
``retry``     instant   hop: repeat requeue (the request migrated before)
``cancelled`` internal  a retracted terminal (undone by preemption); never exported
===========  =========  ===========================================================

Every traced request ends in **exactly one** live terminal span, even
across preemption, migration and checkpointed re-execution — the chaos
suite asserts this conservation invariant.  Head-based sampling
(``sample_rate``) decides per request by a deterministic slot hash;
drops and deadline misses are always sampled by default.

Exporter formats
----------------
* **Chrome/Perfetto trace-event JSON**
  (:func:`~repro.obs.export.to_chrome_trace`): ``{"traceEvents": [...]}``
  with microsecond timestamps.  Process 0 ("servers") renders per-server
  swimlanes of execute/iteration/preempted spans plus fault, scale and
  alert markers from the cluster timeline; process 1 ("requests") holds
  per-request queued spans and terminal/hop instants.  Load the file at
  https://ui.perfetto.dev or ``chrome://tracing``.
* **Prometheus text exposition**
  (:func:`~repro.obs.registry.prometheus_exposition`): ``# HELP`` /
  ``# TYPE`` headers, escaped labels, cumulative histogram buckets with
  ``+Inf`` / ``_sum`` / ``_count`` — a scrapeable ``/metrics`` payload.
* **JSON snapshots** (:func:`~repro.obs.registry.json_snapshot`,
  ``EngineResult.to_json()``, ``ClusterResult.to_json()``): plain dicts
  for report pipelines.

SLO monitoring (:class:`~repro.obs.slo.SloMonitor`) evaluates
multi-window burn-rate rules over attainment and latency objectives at
cluster window boundaries; fired :class:`~repro.obs.slo.AlertEvent`\\ s
land on the merged timeline next to scale/fault events and can feed the
predictive autoscaler.
"""

from .export import to_chrome_trace, validate_chrome_trace, write_chrome_trace
from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    json_snapshot,
    prometheus_exposition,
    registry_from_cluster,
    registry_from_engine,
)
from .slo import (
    DEFAULT_RULES,
    AlertEvent,
    BurnRateRule,
    SloMonitor,
    SloObjective,
)
from .tracing import (
    KIND_NAMES,
    SPAN_CANCELLED,
    SPAN_DROPPED,
    SPAN_EXECUTE,
    SPAN_ITERATION,
    SPAN_MIGRATE,
    SPAN_PREEMPTED,
    SPAN_QUEUED,
    SPAN_RETRY,
    SPAN_SERVED,
    SpanStore,
    Tracer,
)

__all__ = [
    "AlertEvent",
    "BurnRateRule",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_RULES",
    "Gauge",
    "Histogram",
    "KIND_NAMES",
    "MetricsRegistry",
    "SPAN_CANCELLED",
    "SPAN_DROPPED",
    "SPAN_EXECUTE",
    "SPAN_ITERATION",
    "SPAN_MIGRATE",
    "SPAN_PREEMPTED",
    "SPAN_QUEUED",
    "SPAN_RETRY",
    "SPAN_SERVED",
    "SloMonitor",
    "SloObjective",
    "SpanStore",
    "Tracer",
    "json_snapshot",
    "prometheus_exposition",
    "registry_from_cluster",
    "registry_from_engine",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]

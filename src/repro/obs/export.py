"""Trace export: Chrome/Perfetto trace-event JSON from a span store.

The exporter maps the span taxonomy onto the Chrome trace-event format
(loadable in ``chrome://tracing`` and https://ui.perfetto.dev):

* **pid 0 — "servers"**: one thread lane per server.  ``execute``,
  ``iteration`` and ``preempted`` spans become complete-duration ``"X"``
  events, so the run renders as per-server swimlanes of batch work.
  Fault and scale events from the merged cluster timeline land as
  instant ``"i"`` markers on the affected server's lane; SLO alerts land
  on a dedicated ``control`` lane after the last server.
* **pid 1 — "requests"**: one thread lane per sampled request slot.
  ``queued`` spans are ``"X"`` events; ``served`` / ``dropped``
  terminals and ``migrate`` / ``retry`` hops are instants.

Timestamps are microseconds (the format's unit); simulated seconds are
scaled by 1e6.  ``cancelled`` spans (terminals retracted by preemption)
are never exported.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Sequence

import numpy as np

from .tracing import (
    DURATION_KINDS,
    KIND_NAMES,
    SPAN_CANCELLED,
    SpanStore,
    Tracer,
)

_US = 1e6
_SERVER_PID = 0
_REQUEST_PID = 1
#: Span kinds drawn on server lanes; the rest belong to request lanes.
_SERVER_LANE_KINDS = frozenset((1, 2, 3))  # execute, iteration, preempted


def to_chrome_trace(
    source,
    timeline: Sequence = (),
    server_names: Optional[Sequence[str]] = None,
) -> Dict:
    """Render spans (+ optional cluster timeline) as a Chrome trace dict.

    ``source`` is a :class:`~repro.obs.tracing.Tracer` or its
    :class:`~repro.obs.tracing.SpanStore`; ``timeline`` is the merged
    event sequence from ``ClusterResult.timeline()`` (scale, fault and
    alert events, interleaved by time); ``server_names`` labels the
    server lanes.  Returns a JSON-serializable dict with a
    ``traceEvents`` list — dump with ``json.dump`` and load in Perfetto.
    """
    store = source.store if isinstance(source, Tracer) else source
    if not isinstance(store, SpanStore):
        raise TypeError("source must be a Tracer or SpanStore")
    columns = store.columns()
    kinds = columns["kind"]
    events = []

    servers_seen = sorted(
        int(s) for s in np.unique(columns["server"]) if int(s) >= 0
    )
    events.append(_meta(_SERVER_PID, None, "process_name", "servers"))
    for server in servers_seen:
        name = (
            server_names[server]
            if server_names is not None and server < len(server_names)
            else f"server {server}"
        )
        events.append(_meta(_SERVER_PID, server, "thread_name", name))
    events.append(_meta(_REQUEST_PID, None, "process_name", "requests"))

    live = kinds != SPAN_CANCELLED
    for row in np.flatnonzero(live).tolist():
        kind = int(kinds[row])
        name = KIND_NAMES[kind]
        start = float(columns["start"][row])
        end = float(columns["end"][row])
        request = int(columns["request"][row])
        server = int(columns["server"][row])
        if kind in _SERVER_LANE_KINDS:
            pid, tid = _SERVER_PID, server
        else:
            pid, tid = _REQUEST_PID, request
        event = {
            "name": name,
            "ph": "X" if kind in DURATION_KINDS else "i",
            "pid": pid,
            "tid": tid,
            "ts": start * _US,
            "args": {"value": float(columns["value"][row])},
        }
        if kind in DURATION_KINDS:
            event["dur"] = max(0.0, end - start) * _US
        else:
            event["s"] = "t"
        if request >= 0:
            event["args"]["request"] = request
        if server >= 0:
            event["args"]["server"] = server
        events.append(event)

    control_lane = (max(servers_seen) + 1) if servers_seen else 0
    control_named = False
    for entry in timeline:
        event = entry[-1] if isinstance(entry, tuple) else entry
        marker = _timeline_marker(event, control_lane)
        if marker is None:
            continue
        if marker["tid"] == control_lane and not control_named:
            events.append(
                _meta(_SERVER_PID, control_lane, "thread_name", "control")
            )
            control_named = True
        events.append(marker)

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _meta(pid: int, tid: Optional[int], name: str, value: str) -> Dict:
    event = {"name": name, "ph": "M", "pid": pid, "args": {"name": value}}
    if tid is not None:
        event["tid"] = tid
    return event


def _timeline_marker(event, control_lane: int) -> Optional[Dict]:
    """One cluster event → one instant marker (None for unknown shapes)."""
    time = getattr(event, "time", None)
    if time is None:
        return None
    args = {}
    if hasattr(event, "objective"):          # AlertEvent
        name = f"alert:{event.objective}"
        tid = control_lane
        args = {
            "severity": event.severity,
            "burn_fast": event.burn_fast,
            "burn_slow": event.burn_slow,
        }
    elif hasattr(event, "action"):           # ScaleEvent
        name = f"scale:{event.action}"
        tid = int(event.server)
        args = {"active_after": int(event.active_after)}
        if getattr(event, "reason", ""):
            args["reason"] = event.reason
    elif hasattr(event, "kind"):             # FaultEvent
        name = f"fault:{event.kind}"
        tid = int(getattr(event, "server", control_lane))
    else:
        return None
    return {
        "name": name,
        "ph": "i",
        "s": "g",
        "pid": _SERVER_PID,
        "tid": tid,
        "ts": float(time) * _US,
        "args": args,
    }


def write_chrome_trace(path, source, timeline=(), server_names=None) -> None:
    """Serialize :func:`to_chrome_trace` output to ``path`` as JSON."""
    trace = to_chrome_trace(source, timeline=timeline, server_names=server_names)
    with open(path, "w") as handle:
        json.dump(trace, handle)


def validate_chrome_trace(trace: Dict) -> None:
    """Schema-check a trace dict; raises ``ValueError`` on any violation.

    Checks the subset of the trace-event format the exporter relies on:
    a ``traceEvents`` list whose entries carry ``name``/``ph``/``pid``
    with numeric non-negative ``ts`` on non-metadata events, ``dur`` on
    complete events, and a scope flag on instants — enough that a file
    passing here loads in Perfetto.
    """
    if not isinstance(trace, dict):
        raise ValueError("trace must be a dict")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace.traceEvents must be a list")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where} is not an object")
        for key in ("name", "ph", "pid"):
            if key not in event:
                raise ValueError(f"{where} missing '{key}'")
        phase = event["ph"]
        if phase not in ("X", "i", "M", "B", "E", "C"):
            raise ValueError(f"{where} has unsupported phase {phase!r}")
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or not np.isfinite(ts) or ts < 0:
            raise ValueError(f"{where} has invalid ts {ts!r}")
        if "tid" not in event:
            raise ValueError(f"{where} missing 'tid'")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or not np.isfinite(dur) or dur < 0:
                raise ValueError(f"{where} has invalid dur {dur!r}")
        if phase == "i" and event.get("s") not in ("t", "p", "g"):
            raise ValueError(f"{where} instant missing scope")
    # Must round-trip through JSON (no numpy scalars, arrays, or NaN).
    try:
        json.dumps(trace, allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"trace is not JSON-serializable: {exc}") from exc

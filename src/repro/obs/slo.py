"""SLO monitoring: multi-window burn-rate alerting over telemetry windows.

Classic single-threshold SLO alerts are either too twitchy (page on one
bad window) or too slow (miss a budget-destroying incident for hours).
The standard fix is *multi-window burn-rate* alerting: an alert fires
only when the error-budget burn rate — window error rate divided by the
budget ``1 - target`` — exceeds a threshold over both a short window
(the incident is happening *now*) and a long window (it is not a blip).

:class:`SloMonitor` evaluates :class:`SloObjective`\\ s against the
closed :class:`~repro.serving.telemetry.TelemetryBus` windows at
``ClusterEngine`` boundaries.  Two objective kinds:

* ``attainment`` — error rate is the fraction of deadline-tracked
  requests that missed their deadline in the window (drops included via
  the bus's drop accounting).
* ``latency`` — error rate is the fraction of requests whose latency
  exceeded ``latency_slo_seconds`` (drops count as violations).

Fired alerts become :class:`AlertEvent`\\ s on the merged cluster
timeline next to scale and fault events, and can feed
``PredictiveFaultAutoscaler.observe_alerts`` as a scale-up signal.
Alerts are edge-triggered: a rule re-fires only after its fast-window
burn has dropped back below threshold.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class SloObjective:
    """One service-level objective evaluated per telemetry window."""

    name: str
    target: float                        # e.g. 0.99 → 1% error budget
    kind: str = "attainment"             # "attainment" | "latency"
    latency_slo_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ValueError("target must be in (0, 1)")
        if self.kind not in ("attainment", "latency"):
            raise ValueError(f"unknown objective kind {self.kind!r}")
        if self.kind == "latency" and self.latency_slo_seconds is None:
            raise ValueError("latency objectives need latency_slo_seconds")

    @property
    def budget(self) -> float:
        return 1.0 - self.target


@dataclass(frozen=True)
class BurnRateRule:
    """Fire when burn >= threshold over both fast and slow windows."""

    threshold: float                     # budget multiples, e.g. 14.4
    fast_windows: int = 1                # telemetry windows in the fast pane
    slow_windows: int = 12               # telemetry windows in the slow pane
    severity: str = "page"

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if not 0 < self.fast_windows <= self.slow_windows:
            raise ValueError("need 0 < fast_windows <= slow_windows")


@dataclass(frozen=True)
class AlertEvent:
    """A burn-rate alert, placed on the merged cluster timeline."""

    time: float
    objective: str
    severity: str
    burn_fast: float
    burn_slow: float
    threshold: float
    window: int


#: Default rule pair, scaled from the SRE-workbook 5m/1h + 6h/3d pairs to
#: simulation window counts: a fast pager and a slow ticket.
DEFAULT_RULES = (
    BurnRateRule(threshold=14.4, fast_windows=1, slow_windows=12,
                 severity="page"),
    BurnRateRule(threshold=3.0, fast_windows=6, slow_windows=48,
                 severity="ticket"),
)


@dataclass
class SloMonitor:
    """Evaluates burn-rate rules over successive telemetry windows.

    Attach via ``ClusterEngine(slo_monitor=...)``; the engine calls
    :meth:`evaluate` once per closed window and records the returned
    :class:`AlertEvent`\\ s onto the telemetry timeline.
    """

    objectives: Sequence[SloObjective]
    rules: Sequence[BurnRateRule] = DEFAULT_RULES
    _errors: Dict[str, Deque[Tuple[float, float]]] = field(
        default_factory=dict, init=False, repr=False
    )
    _firing: Dict[Tuple[str, int], bool] = field(
        default_factory=dict, init=False, repr=False
    )
    _window_index: int = field(default=0, init=False, repr=False)
    alerts: List[AlertEvent] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if not self.objectives:
            raise ValueError("need at least one objective")
        depth = max(rule.slow_windows for rule in self.rules)
        for objective in self.objectives:
            self._errors[objective.name] = deque(maxlen=depth)

    def reset(self) -> None:
        """Clear window history, firing state and collected alerts."""
        for history in self._errors.values():
            history.clear()
        self._firing.clear()
        self.alerts.clear()
        self._window_index = 0

    # ------------------------------------------------------------------
    def _window_error(self, objective: SloObjective, stats) -> Tuple[float, float]:
        """(violations, total) for one objective in one closed window."""
        if objective.kind == "attainment":
            # deadline_total counts every deadline-carrying request seen in
            # the window (drops included, via the bus's drop accounting);
            # deadline_met the ones served in time.
            total = float(stats.deadline_total)
            return total - float(stats.deadline_met), total
        latencies = np.asarray(stats.latencies, dtype=np.float64)
        drops = float(stats.drops)
        total = float(len(latencies)) + drops
        exceeding = float(
            np.count_nonzero(latencies > objective.latency_slo_seconds)
        )
        return exceeding + drops, total

    def evaluate(self, telemetry, window: int, active_servers) -> List[AlertEvent]:
        """Fold one closed window in; return newly fired alerts.

        ``telemetry`` is the cluster's ``TelemetryBus``; ``window`` the
        just-closed window index; ``active_servers`` the servers that
        were live (forwarded to ``cluster_window``).
        """
        stats = telemetry.cluster_window(window, active_servers)
        boundary = (window + 1) * telemetry.window
        fired: List[AlertEvent] = []
        self._window_index += 1
        for objective in self.objectives:
            history = self._errors[objective.name]
            history.append(self._window_error(objective, stats))
            for index, rule in enumerate(self.rules):
                burn_fast = self._burn(objective, history, rule.fast_windows)
                burn_slow = self._burn(objective, history, rule.slow_windows)
                key = (objective.name, index)
                firing = self._firing.get(key, False)
                if burn_fast >= rule.threshold and burn_slow >= rule.threshold:
                    if not firing:
                        event = AlertEvent(
                            time=float(boundary),
                            objective=objective.name,
                            severity=rule.severity,
                            burn_fast=float(burn_fast),
                            burn_slow=float(burn_slow),
                            threshold=float(rule.threshold),
                            window=int(window),
                        )
                        fired.append(event)
                        self.alerts.append(event)
                        self._firing[key] = True
                elif burn_fast < rule.threshold:
                    self._firing[key] = False
        return fired

    def _burn(
        self,
        objective: SloObjective,
        history: Deque[Tuple[float, float]],
        span: int,
    ) -> float:
        """Burn rate over the trailing ``span`` windows (0 if no traffic).

        Short histories evaluate over what exists — a budget-torching
        first window should page immediately, not wait for the slow pane
        to fill.
        """
        recent = list(history)[-span:]
        total = sum(entry[1] for entry in recent)
        if total <= 0:
            return 0.0
        violations = sum(entry[0] for entry in recent)
        return (violations / total) / objective.budget

"""Request-lifecycle tracing: columnar span store + low-overhead tracer.

The serving layers record *what happened to each request* as typed spans
(see the taxonomy in :mod:`repro.obs`).  Two constraints shape the design:

* **Columnar storage.**  A span is five scalars, and a traced day is
  hundreds of thousands of them — so :class:`SpanStore` keeps parallel
  columns (kind, request, server, start, end, value), not span objects,
  the same structure-of-arrays discipline as
  :class:`~repro.serving.core.RequestStore`.  The engine's columnar fast
  path appends whole numpy chunks (:meth:`SpanStore.extend`) instead of
  looping requests; chunks fold into the row lists only when a later
  mutation or point-append needs stable row identity.

* **Head-based sampling.**  ``sample_rate`` decides *per request*, by a
  deterministic integer hash of the request slot, whether its per-request
  spans (queued / served) are recorded — the same request samples
  identically on the object loop and the vectorized sweep, and across
  reruns.  Batch-level spans (execute / iteration) are always recorded
  when tracing is on: they are O(batches), they are the per-server
  swimlanes, and they cost nothing per request.  Drops and deadline
  misses override the sampling decision (``sample_drops`` /
  ``sample_deadline_misses``): the requests worth debugging are exactly
  the ones a uniform sample would usually miss.

Preemption support keeps the terminal-conservation invariant (every
traced request ends in *exactly one* live terminal span): when a batch is
rewound, its execute span becomes a ``preempted`` span ending at the kill
instant and the victims' ``served`` terminals are retracted (kind
``cancelled``, excluded from queries); the requests then re-terminate
through a later serve or drop.  Requeue decisions land as ``migrate``
(first move) or ``retry`` (repeat move) instants.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

# ----------------------------------------------------------------------
# Span taxonomy (integer codes — the `kind` column)
# ----------------------------------------------------------------------
SPAN_QUEUED = 0      # request waiting: [arrival, batch start)
SPAN_EXECUTE = 1     # batch executing on a server: [start, finish]
SPAN_ITERATION = 2   # one generation iteration on a server: [start, finish]
SPAN_PREEMPTED = 3   # killed execution: [start, kill] (rewritten EXECUTE)
SPAN_SERVED = 4      # terminal instant: request completed (value = latency)
SPAN_DROPPED = 5     # terminal instant: request expired (value = wait)
SPAN_MIGRATE = 6     # hop instant: first requeue off a preempted server
SPAN_RETRY = 7       # hop instant: repeat requeue (request migrated before)
SPAN_CANCELLED = 8   # retracted row (a terminal undone by preemption)

KIND_NAMES = (
    "queued", "execute", "iteration", "preempted", "served", "dropped",
    "migrate", "retry", "cancelled",
)
TERMINAL_KINDS = (SPAN_SERVED, SPAN_DROPPED)
#: Spans with duration (exported as Chrome "X" events; the rest are instants).
DURATION_KINDS = (SPAN_QUEUED, SPAN_EXECUTE, SPAN_ITERATION, SPAN_PREEMPTED)

_HASH_MULT = 2654435761      # Knuth's multiplicative hash constant
_HASH_MOD = 1 << 32


class SpanStore:
    """Append-mostly columnar span storage.

    Point appends go to plain Python lists (O(1) per span, the object
    loop's path); bulk appends park whole numpy column chunks
    (:meth:`extend`, the vectorized path).  Chunks are folded into the
    lists only when row identity matters — a point append or an in-place
    rewrite after a bulk ingest — so the common case never pays a
    concatenation.  :meth:`columns` materializes the unified view.
    """

    __slots__ = ("kinds", "requests", "servers", "starts", "ends", "values",
                 "_chunks")

    def __init__(self) -> None:
        self.kinds: List[int] = []
        self.requests: List[int] = []
        self.servers: List[int] = []
        self.starts: List[float] = []
        self.ends: List[float] = []
        self.values: List[float] = []
        self._chunks: List[tuple] = []

    def __len__(self) -> int:
        return len(self.kinds) + sum(len(chunk[0]) for chunk in self._chunks)

    def _fold(self) -> None:
        """Fold bulk chunks into the row lists (stable row indices after)."""
        for kinds, requests, servers, starts, ends, values in self._chunks:
            self.kinds.extend(int(k) for k in kinds)
            self.requests.extend(int(r) for r in requests)
            self.servers.extend(int(s) for s in servers)
            self.starts.extend(float(t) for t in starts)
            self.ends.extend(float(t) for t in ends)
            self.values.extend(float(v) for v in values)
        self._chunks.clear()

    def append(
        self,
        kind: int,
        request: int,
        server: int,
        start: float,
        end: float,
        value: float,
    ) -> int:
        """Append one span; returns its (stable) row index."""
        if self._chunks:
            self._fold()
        row = len(self.kinds)
        self.kinds.append(int(kind))
        self.requests.append(int(request))
        self.servers.append(int(server))
        self.starts.append(float(start))
        self.ends.append(float(end))
        self.values.append(float(value))
        return row

    def extend(
        self,
        kind: int,
        requests: np.ndarray,
        servers: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Bulk-append ``len(requests)`` spans of one kind (columnar path)."""
        count = len(requests)
        if count == 0:
            return
        self._chunks.append((
            np.full(count, int(kind), dtype=np.int64),
            np.asarray(requests, dtype=np.int64),
            np.asarray(servers, dtype=np.int64),
            np.asarray(starts, dtype=np.float64),
            np.asarray(ends, dtype=np.float64),
            np.asarray(values, dtype=np.float64),
        ))

    def rewrite(
        self, row: int, kind: int, end: Optional[float] = None
    ) -> None:
        """Rewrite one span's kind (and optionally end) in place."""
        if self._chunks:
            self._fold()
        self.kinds[row] = int(kind)
        if end is not None:
            self.ends[row] = float(end)

    def columns(self) -> Dict[str, np.ndarray]:
        """The unified columnar view (lists + chunks, concatenated copies)."""
        parts = [(
            np.asarray(self.kinds, dtype=np.int64),
            np.asarray(self.requests, dtype=np.int64),
            np.asarray(self.servers, dtype=np.int64),
            np.asarray(self.starts, dtype=np.float64),
            np.asarray(self.ends, dtype=np.float64),
            np.asarray(self.values, dtype=np.float64),
        )] + self._chunks
        names = ("kind", "request", "server", "start", "end", "value")
        if len(parts) == 1:
            return dict(zip(names, parts[0]))
        return {
            name: np.concatenate([part[i] for part in parts])
            for i, name in enumerate(names)
        }


class Tracer:
    """Low-overhead request-lifecycle tracer (engine / scheduler hook).

    Attach one to a :class:`~repro.serving.engine.ServingEngine`,
    :class:`~repro.serving.cluster.ClusterEngine` or
    :class:`~repro.serving.generation.IterationScheduler` via their
    ``tracer`` parameter.  ``sample_rate`` head-samples per-request spans
    (batch/iteration spans are always kept); ``sample_drops`` and
    ``sample_deadline_misses`` force-trace the interesting requests
    regardless of the sampling decision.  Everything is opt-in: engines
    built without a tracer take a single ``is None`` branch per batch.
    """

    def __init__(
        self,
        sample_rate: float = 1.0,
        sample_drops: bool = True,
        sample_deadline_misses: bool = True,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        self.sample_rate = float(sample_rate)
        self.sample_drops = bool(sample_drops)
        self.sample_deadline_misses = bool(sample_deadline_misses)
        self._threshold = int(self.sample_rate * _HASH_MOD)
        self.store = SpanStore()
        # Live terminal row per traced slot (object path only; bulk-ingested
        # sessions cannot be preempted, so they skip the bookkeeping).
        self._terminal_row: Dict[int, int] = {}
        # Execute/iteration row per record identity, for preemption rewrite.
        self._record_row: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    @property
    def wants_deadlines(self) -> bool:
        """Whether hooks should pass deadline columns (miss-forced sampling)."""
        return self.sample_deadline_misses and self.sample_rate < 1.0

    def sample_mask(self, slots: np.ndarray) -> np.ndarray:
        """Deterministic head-sampling decision per slot (vectorized)."""
        if self.sample_rate >= 1.0:
            return np.ones(len(slots), dtype=bool)
        if self.sample_rate <= 0.0:
            return np.zeros(len(slots), dtype=bool)
        hashed = (
            np.asarray(slots, dtype=np.uint64) * np.uint64(_HASH_MULT)
        ) % np.uint64(_HASH_MOD)
        return hashed < np.uint64(self._threshold)

    def reset(self) -> None:
        """Drop all recorded spans and bookkeeping (fresh run)."""
        self.store = SpanStore()
        self._terminal_row.clear()
        self._record_row.clear()

    # ------------------------------------------------------------------
    # Engine hooks (object loop)
    # ------------------------------------------------------------------
    def on_batch(
        self,
        record,
        slots: np.ndarray,
        arrivals: np.ndarray,
        deadlines: Optional[np.ndarray] = None,
    ) -> None:
        """One executed batch: execute span + sampled per-request spans.

        ``record`` is any object with ``server``/``start``/``finish``
        attributes (:class:`~repro.serving.engine.BatchRecord`);
        ``deadlines`` (absolute, ``nan`` = none) enables forced sampling
        of deadline-missing requests.
        """
        store = self.store
        row = store.append(
            SPAN_EXECUTE, -1, record.server, record.start, record.finish,
            float(len(slots)),
        )
        self._record_row[id(record)] = row
        mask = self.sample_mask(slots)
        if deadlines is not None and self.sample_deadline_misses:
            mask |= ~np.isnan(deadlines) & (record.finish > deadlines)
        if not mask.any():
            return
        start, finish, server = record.start, record.finish, record.server
        for slot, arrival in zip(
            np.asarray(slots)[mask].tolist(), np.asarray(arrivals)[mask].tolist()
        ):
            slot = int(slot)
            store.append(SPAN_QUEUED, slot, server, arrival, start, start - arrival)
            self._terminal_row[slot] = store.append(
                SPAN_SERVED, slot, server, finish, finish, finish - arrival
            )

    def on_drop(
        self, slots: np.ndarray, arrivals: np.ndarray, time: float
    ) -> None:
        """Expired requests: queued span + dropped terminal per request."""
        slots_arr = np.asarray(slots)
        if self.sample_drops:
            mask = np.ones(len(slots_arr), dtype=bool)
        else:
            mask = self.sample_mask(slots_arr)
        if not mask.any():
            return
        store = self.store
        time = float(time)
        for slot, arrival in zip(
            slots_arr[mask].tolist(), np.asarray(arrivals)[mask].tolist()
        ):
            slot = int(slot)
            store.append(SPAN_QUEUED, slot, -1, arrival, time, time - arrival)
            self._terminal_row[slot] = store.append(
                SPAN_DROPPED, slot, -1, time, time, time - arrival
            )

    def on_preempt(self, record, slots: Sequence[int], time: float) -> None:
        """A batch/iteration was rewound: rewrite its span, retract terminals.

        The execute span becomes ``preempted``, truncated to the kill
        instant (zero-length for batches that had not started); victims'
        ``served`` terminals are cancelled so their eventual re-serve or
        drop is the single live terminal again.
        """
        row = self._record_row.pop(id(record), None)
        if row is not None:
            end = min(float(record.finish), max(float(record.start), float(time)))
            self.store.rewrite(row, SPAN_PREEMPTED, end=end)
        for slot in slots:
            terminal = self._terminal_row.pop(int(slot), None)
            if terminal is not None:
                self.store.rewrite(terminal, SPAN_CANCELLED)

    def on_requeue(
        self,
        slots: Sequence[int],
        prior_migrations: Sequence[int],
        time: float,
        server: int,
    ) -> None:
        """Migration hops: ``migrate`` on first move, ``retry`` on repeats."""
        store = self.store
        time = float(time)
        for slot, prior in zip(slots, prior_migrations):
            kind = SPAN_RETRY if int(prior) > 0 else SPAN_MIGRATE
            store.append(kind, int(slot), int(server), time, time, float(prior) + 1.0)

    def on_iteration(self, record) -> None:
        """One generation iteration (value = tokens emitted)."""
        row = self.store.append(
            SPAN_ITERATION, -1, record.server, record.start, record.finish,
            float(getattr(record, "tokens", 0)),
        )
        self._record_row[id(record)] = row

    def on_served(
        self,
        slots: Sequence[int],
        arrivals: Sequence[float],
        finishes: Sequence[float],
        server: int,
        deadlines: Optional[Sequence[float]] = None,
    ) -> None:
        """Terminal instants for sequences retired outside a batch record.

        The generation loop's counterpart to the tail of :meth:`on_batch`:
        sequences finish at their own last-token time inside an iteration,
        so their terminals carry individual finishes.  Sampling (and the
        deadline-miss override) applies per slot as everywhere else.
        """
        slots_arr = np.asarray(slots)
        if len(slots_arr) == 0:
            return
        mask = self.sample_mask(slots_arr)
        if deadlines is not None and self.sample_deadline_misses:
            deadlines_arr = np.asarray(deadlines, dtype=np.float64)
            finishes_arr = np.asarray(finishes, dtype=np.float64)
            mask |= ~np.isnan(deadlines_arr) & (finishes_arr > deadlines_arr)
        if not mask.any():
            return
        store = self.store
        server = int(server)
        for slot, arrival, finish in zip(
            slots_arr[mask].tolist(),
            np.asarray(arrivals, dtype=np.float64)[mask].tolist(),
            np.asarray(finishes, dtype=np.float64)[mask].tolist(),
        ):
            slot = int(slot)
            store.append(SPAN_QUEUED, slot, server, arrival, finish,
                         finish - arrival)
            self._terminal_row[slot] = store.append(
                SPAN_SERVED, slot, server, finish, finish, finish - arrival
            )

    # ------------------------------------------------------------------
    # Columnar fast path (bulk ingestion)
    # ------------------------------------------------------------------
    def ingest_columnar(
        self,
        run,
        arrivals: np.ndarray,
        deadlines: Optional[np.ndarray] = None,
    ) -> None:
        """Bulk-ingest a :class:`~repro.serving.core.ColumnarFifoRun`.

        Emits the same spans the object loop would, in whole-column
        chunks: one execute span per batch, queued+served spans for the
        sampled (or deadline-missing) requests, queued+dropped spans for
        every drop cohort member.  FIFO batches form over consecutive
        arrival positions, so the non-``nan`` segments of the run's
        segment partition correspond 1:1, in order, to its batches — that
        alignment recovers per-request batch starts and servers without a
        per-request loop.
        """
        store = self.store
        num_batches = len(run.starts)
        minus_one = np.full(num_batches, -1, dtype=np.int64)
        store.extend(
            SPAN_EXECUTE, minus_one, run.servers, run.starts, run.finishes,
            run.sizes.astype(np.float64),
        )
        if not len(run.seg_sizes):
            return
        seg_is_batch = ~np.isnan(run.seg_finishes)
        seg_starts = np.full(len(run.seg_finishes), np.nan)
        seg_starts[seg_is_batch] = run.starts
        seg_servers = np.full(len(run.seg_finishes), -1, dtype=np.int64)
        seg_servers[seg_is_batch] = run.servers
        starts_pr = np.repeat(seg_starts, run.seg_sizes)
        servers_pr = np.repeat(seg_servers, run.seg_sizes)
        finishes_pr = np.repeat(run.seg_finishes, run.seg_sizes)
        positions = np.arange(len(starts_pr), dtype=np.int64)
        served = ~np.isnan(finishes_pr)
        mask = self.sample_mask(positions) & served
        if deadlines is not None and self.sample_deadline_misses:
            mask |= served & ~np.isnan(deadlines) & (finishes_pr > deadlines)
        if mask.any():
            sel = positions[mask]
            arr = np.asarray(arrivals, dtype=np.float64)[mask]
            store.extend(
                SPAN_QUEUED, sel, servers_pr[mask], arr, starts_pr[mask],
                starts_pr[mask] - arr,
            )
            store.extend(
                SPAN_SERVED, sel, servers_pr[mask], finishes_pr[mask],
                finishes_pr[mask], finishes_pr[mask] - arr,
            )
        if run.dropped:
            counts = run.drop_his - run.drop_los
            # Vectorized range concatenation: arange over the total count,
            # offset so each cohort restarts at its own lo.
            total = int(counts.sum())
            offsets = np.repeat(
                run.drop_los - np.concatenate(([0], np.cumsum(counts)[:-1])),
                counts,
            )
            drop_positions = np.arange(total, dtype=np.int64) + offsets
            drop_times = np.repeat(run.drop_times, counts)
            if not self.sample_drops:
                keep = self.sample_mask(drop_positions)
                drop_positions = drop_positions[keep]
                drop_times = drop_times[keep]
            if len(drop_positions):
                arr = np.asarray(arrivals, dtype=np.float64)[drop_positions]
                no_server = np.full(len(drop_positions), -1, dtype=np.int64)
                store.extend(
                    SPAN_QUEUED, drop_positions, no_server, arr, drop_times,
                    drop_times - arr,
                )
                store.extend(
                    SPAN_DROPPED, drop_positions, no_server, drop_times,
                    drop_times, drop_times - arr,
                )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def spans(self) -> Dict[str, np.ndarray]:
        """The recorded spans as a columnar dict (copy)."""
        return self.store.columns()

    def span_counts(self) -> Dict[str, int]:
        """``{kind name: count}`` over every recorded span."""
        kinds = self.store.columns()["kind"]
        return {
            name: int(np.count_nonzero(kinds == code))
            for code, name in enumerate(KIND_NAMES)
        }

    def terminal_requests(self) -> Dict[int, int]:
        """``{request: live terminal count}`` — the conservation check.

        Every traced request must map to exactly 1 (one ``served`` or
        ``dropped`` instant), even across preemptions, migrations and
        checkpointed re-execution; cancelled terminals are excluded.
        """
        columns = self.store.columns()
        kinds = columns["kind"]
        terminal = (kinds == SPAN_SERVED) | (kinds == SPAN_DROPPED)
        requests = columns["request"][terminal]
        counts: Dict[int, int] = {}
        for request in requests.tolist():
            counts[request] = counts.get(request, 0) + 1
        return counts

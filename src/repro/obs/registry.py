"""Metrics export: a labeled counter/gauge/histogram registry.

:class:`MetricsRegistry` is the aggregation point between the serving
layers' telemetry and external consumers.  Instruments follow the
Prometheus data model — a metric has a name, help text and a fixed label
schema; each distinct label-value combination is an independent child —
and two exporters serialize a registry snapshot:

* :func:`prometheus_exposition` — Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, escaped label values, cumulative
  histogram buckets with ``+Inf``/``_sum``/``_count``), scrapeable as a
  ``/metrics`` payload.
* :func:`json_snapshot` — a plain-dict snapshot for report pipelines.

:func:`registry_from_engine` / :func:`registry_from_cluster` populate a
registry from finished runs, so ``EngineResult`` / ``ClusterResult``
convert to exportable metrics without the engines importing this module.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

DEFAULT_LATENCY_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _label_key(
    labelnames: Sequence[str], labels: Dict[str, str]
) -> Tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"labels {sorted(labels)} do not match schema {sorted(labelnames)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class Counter:
    """Monotonically increasing count (per label set)."""

    kind = "counter"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: Dict[Tuple[str, ...], float] = {}

    def labels(self, **labels: str) -> "_BoundCounter":
        key = _label_key(self.labelnames, labels)
        self._children.setdefault(key, 0.0)
        return _BoundCounter(self, key)

    def inc(self, amount: float = 1.0) -> None:
        if self.labelnames:
            raise ValueError(f"{self.name} requires labels {self.labelnames}")
        self._inc((), amount)

    def _inc(self, key: Tuple[str, ...], amount: float) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self._children[key] = self._children.get(key, 0.0) + float(amount)

    def samples(self) -> List[Tuple[Tuple[str, ...], float]]:
        return sorted(self._children.items())


class _BoundCounter:
    __slots__ = ("_metric", "_key")

    def __init__(self, metric: Counter, key: Tuple[str, ...]):
        self._metric = metric
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        self._metric._inc(self._key, amount)


class Gauge:
    """Point-in-time value (per label set); can move both directions."""

    kind = "gauge"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: Dict[Tuple[str, ...], float] = {}

    def labels(self, **labels: str) -> "_BoundGauge":
        key = _label_key(self.labelnames, labels)
        self._children.setdefault(key, 0.0)
        return _BoundGauge(self, key)

    def set(self, value: float) -> None:
        if self.labelnames:
            raise ValueError(f"{self.name} requires labels {self.labelnames}")
        self._children[()] = float(value)

    def samples(self) -> List[Tuple[Tuple[str, ...], float]]:
        return sorted(self._children.items())


class _BoundGauge:
    __slots__ = ("_metric", "_key")

    def __init__(self, metric: Gauge, key: Tuple[str, ...]):
        self._metric = metric
        self._key = key

    def set(self, value: float) -> None:
        self._metric._children[self._key] = float(value)


class Histogram:
    """Bucketed distribution (per label set) with sum and count."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        upper = sorted(float(b) for b in buckets)
        if not upper or any(not math.isfinite(b) for b in upper):
            raise ValueError("buckets must be finite and non-empty")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(upper)
        # child → [per-bucket counts..., +Inf count, sum]
        self._children: Dict[Tuple[str, ...], List[float]] = {}

    def labels(self, **labels: str) -> "_BoundHistogram":
        key = _label_key(self.labelnames, labels)
        self._children.setdefault(key, [0.0] * (len(self.buckets) + 2))
        return _BoundHistogram(self, key)

    def observe(self, value: float) -> None:
        if self.labelnames:
            raise ValueError(f"{self.name} requires labels {self.labelnames}")
        self._observe_many((), np.asarray([value], dtype=np.float64))

    def _observe_many(self, key: Tuple[str, ...], values: np.ndarray) -> None:
        cells = self._children.setdefault(
            key, [0.0] * (len(self.buckets) + 2)
        )
        counts = np.bincount(
            np.searchsorted(self.buckets, values, side="left"),
            minlength=len(self.buckets) + 1,
        )
        for index, count in enumerate(counts.tolist()):
            cells[index] += count
        cells[-1] += float(values.sum())

    def samples(self) -> List[Tuple[Tuple[str, ...], List[float]]]:
        return sorted(self._children.items())


class _BoundHistogram:
    __slots__ = ("_metric", "_key")

    def __init__(self, metric: Histogram, key: Tuple[str, ...]):
        self._metric = metric
        self._key = key

    def observe(self, value: float) -> None:
        self._metric._observe_many(
            self._key, np.asarray([value], dtype=np.float64)
        )

    def observe_many(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        if len(values):
            self._metric._observe_many(self._key, values)


class MetricsRegistry:
    """Named collection of metrics with get-or-create semantics."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        existing = self._metrics.get(name)
        if existing is None:
            metric = Histogram(name, help, labelnames, buckets)
            self._metrics[name] = metric
            return metric
        self._check(existing, Histogram, name, labelnames)
        return existing

    def _get_or_create(self, cls, name, help, labelnames):
        existing = self._metrics.get(name)
        if existing is None:
            metric = cls(name, help, labelnames)
            self._metrics[name] = metric
            return metric
        self._check(existing, cls, name, labelnames)
        return existing

    @staticmethod
    def _check(existing, cls, name, labelnames) -> None:
        if not isinstance(existing, cls):
            raise ValueError(
                f"metric {name!r} already registered as {existing.kind}"
            )
        if existing.labelnames != tuple(labelnames):
            raise ValueError(
                f"metric {name!r} label schema mismatch: "
                f"{existing.labelnames} vs {tuple(labelnames)}"
            )

    def metrics(self) -> List:
        return [self._metrics[name] for name in sorted(self._metrics)]


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_str(labelnames, labelvalues, extra: str = "") -> str:
    pairs = [
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(labelnames, labelvalues)
    ]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def prometheus_exposition(registry: MetricsRegistry) -> str:
    """Serialize a registry in Prometheus text exposition format."""
    lines: List[str] = []
    for metric in registry.metrics():
        lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if metric.kind == "histogram":
            for key, cells in metric.samples():
                cumulative = 0.0
                for upper, count in zip(metric.buckets, cells):
                    cumulative += count
                    le = _label_str(
                        metric.labelnames, key,
                        f'le="{_format_value(upper)}"',
                    )
                    lines.append(
                        f"{metric.name}_bucket{le} {_format_value(cumulative)}"
                    )
                cumulative += cells[len(metric.buckets)]
                le = _label_str(metric.labelnames, key, 'le="+Inf"')
                lines.append(
                    f"{metric.name}_bucket{le} {_format_value(cumulative)}"
                )
                labels = _label_str(metric.labelnames, key)
                lines.append(
                    f"{metric.name}_sum{labels} {_format_value(cells[-1])}"
                )
                lines.append(
                    f"{metric.name}_count{labels} {_format_value(cumulative)}"
                )
        else:
            for key, value in metric.samples():
                labels = _label_str(metric.labelnames, key)
                lines.append(f"{metric.name}{labels} {_format_value(value)}")
    return "\n".join(lines) + "\n"


def json_snapshot(registry: MetricsRegistry) -> Dict:
    """Serialize a registry as a plain JSON-ready dict."""
    out: Dict[str, Dict] = {}
    for metric in registry.metrics():
        entry: Dict = {
            "type": metric.kind,
            "help": metric.help,
            "labelnames": list(metric.labelnames),
        }
        if metric.kind == "histogram":
            entry["buckets"] = list(metric.buckets)
            entry["samples"] = [
                {
                    "labels": dict(zip(metric.labelnames, key)),
                    "counts": cells[: len(metric.buckets) + 1],
                    "sum": cells[-1],
                    "count": float(sum(cells[: len(metric.buckets) + 1])),
                }
                for key, cells in metric.samples()
            ]
        else:
            entry["samples"] = [
                {"labels": dict(zip(metric.labelnames, key)), "value": value}
                for key, value in metric.samples()
            ]
        out[metric.name] = entry
    return out


# ----------------------------------------------------------------------
# Population from finished runs
# ----------------------------------------------------------------------
def registry_from_engine(
    result,
    registry: Optional[MetricsRegistry] = None,
    buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
) -> MetricsRegistry:
    """Populate a registry from an ``EngineResult``-shaped object."""
    registry = registry or MetricsRegistry()
    served = registry.counter(
        "repro_requests_served_total", "Requests completed."
    )
    served.inc(len(result.request_latencies))
    dropped = registry.counter(
        "repro_requests_dropped_total", "Requests dropped before service."
    )
    dropped.inc(int(result.dropped))
    batches = registry.counter(
        "repro_batches_total", "Batches executed.", ("server",)
    )
    for record in result.batch_records:
        batches.labels(server=str(record.server)).inc()
    busy = registry.gauge(
        "repro_server_busy_seconds", "Busy time per server.", ("server",)
    )
    for server, seconds in enumerate(result.server_busy_times):
        busy.labels(server=str(server)).set(float(seconds))
    migrated = registry.counter(
        "repro_requests_migrated_total", "Requests that migrated servers."
    )
    migrated.inc(int(getattr(result, "migrated", 0)))
    latency = registry.histogram(
        "repro_request_latency_seconds",
        "End-to-end request latency.",
        buckets=buckets,
    )
    values = np.asarray(result.request_latencies, dtype=np.float64)
    if len(values):
        latency._observe_many((), values)
    else:
        latency._children.setdefault((), [0.0] * (len(latency.buckets) + 2))
    return registry


def registry_from_cluster(
    outcome,
    registry: Optional[MetricsRegistry] = None,
    buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
) -> MetricsRegistry:
    """Populate a registry from a ``ClusterResult``-shaped object."""
    registry = registry_from_engine(
        outcome.result, registry=registry, buckets=buckets
    )
    scale = registry.counter(
        "repro_scale_events_total", "Autoscaler actions.", ("action",)
    )
    for event in outcome.scale_events:
        scale.labels(action=str(event.action)).inc()
    faults = registry.counter(
        "repro_fault_events_total", "Injected fault events.", ("kind",)
    )
    for event in outcome.fault_events:
        faults.labels(kind=str(event.kind)).inc()
    alerts = registry.counter(
        "repro_slo_alerts_total",
        "SLO burn-rate alerts fired.",
        ("objective", "severity"),
    )
    for event in getattr(outcome, "alert_events", ()):
        alerts.labels(
            objective=str(event.objective), severity=str(event.severity)
        ).inc()
    active = registry.gauge(
        "repro_servers_active", "Active servers at run end."
    )
    history = [outcome.initial_active] + [
        event.active_after for event in outcome.scale_events
    ]
    active.set(float(history[-1]))
    peak = registry.gauge(
        "repro_servers_active_peak", "Peak active servers over the run."
    )
    peak.set(float(max(history)))
    return registry

"""Memory footprint and bandwidth model (Section 7, "Resource Consumption").

FlexiQ stores 8-bit weights so the 4-bit ratio can change at run time; its
footprint therefore equals an INT8 model's.  Three refinements discussed in
the paper are modelled here:

* restricting the supported ratio range (e.g. 50-100 % instead of 0-100 %)
  lets the never-8-bit channels be stored in 4 bits, shrinking the footprint;
* runtime bit extraction reads 8-bit weights for channels computed in 4-bit,
  costing extra bandwidth relative to a uniform INT4 model;
* caching the extracted 4-bit weights removes that bandwidth overhead at the
  cost of additional memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.hardware.workloads import LayerOp


@dataclass(frozen=True)
class MemoryFootprint:
    """Bytes of parameter storage and per-inference weight traffic."""

    weight_bytes: float
    cache_bytes: float
    weight_traffic_bytes: float

    @property
    def total_bytes(self) -> float:
        return self.weight_bytes + self.cache_bytes


def _weight_elements(ops: Sequence[LayerOp]) -> float:
    return float(sum(op.n * op.k for op in ops if op.kind == "gemm"))


def uniform_footprint(ops: Sequence[LayerOp], bits: int) -> MemoryFootprint:
    """Footprint of a uniform ``bits``-wide model (no runtime flexibility)."""
    elements = _weight_elements(ops)
    bytes_per_element = bits / 8.0
    weight_bytes = elements * bytes_per_element
    return MemoryFootprint(
        weight_bytes=weight_bytes,
        cache_bytes=0.0,
        weight_traffic_bytes=weight_bytes,
    )


def flexiq_footprint(
    ops: Sequence[LayerOp],
    min_ratio: float = 0.0,
    max_ratio: float = 1.0,
    active_ratio: float | None = None,
    cache_extracted: bool = False,
) -> MemoryFootprint:
    """Footprint/traffic of a FlexiQ model supporting ratios in [min, max].

    Channels that are 4-bit at *every* supported ratio (the ``min_ratio``
    prefix) never need their 8-bit form and can be stored in 4 bits; the rest
    stay 8-bit so the ratio can be raised or lowered at run time.

    ``active_ratio`` (defaults to ``max_ratio``) sets the deployed ratio used
    for the traffic estimate; ``cache_extracted`` additionally stores the
    extracted 4-bit copies of the channels currently computed in 4-bit,
    trading memory for bandwidth.
    """
    if not 0.0 <= min_ratio <= max_ratio <= 1.0:
        raise ValueError("ratios must satisfy 0 <= min_ratio <= max_ratio <= 1")
    active_ratio = max_ratio if active_ratio is None else active_ratio
    if not min_ratio <= active_ratio <= max_ratio:
        raise ValueError("active_ratio must lie within the supported range")

    elements = _weight_elements(ops)
    always_low = elements * min_ratio          # storable as 4-bit
    flexible = elements - always_low           # must stay 8-bit
    weight_bytes = always_low * 0.5 + flexible * 1.0

    # Per-inference weight traffic: 4-bit channels read either their cached
    # 4-bit copy or their 8-bit master; 8-bit channels always read 8 bits.
    low_elements = elements * active_ratio
    high_elements = elements - low_elements
    low_read_bytes = low_elements * (0.5 if cache_extracted or active_ratio <= min_ratio else 1.0)
    weight_traffic = low_read_bytes + high_elements * 1.0

    cache_bytes = 0.0
    if cache_extracted:
        cache_bytes = max(low_elements - always_low, 0.0) * 0.5
    return MemoryFootprint(
        weight_bytes=weight_bytes,
        cache_bytes=cache_bytes,
        weight_traffic_bytes=weight_traffic,
    )


def resource_report(ops: Sequence[LayerOp]) -> Dict[str, MemoryFootprint]:
    """Footprints of the deployment options discussed in Section 7."""
    return {
        "uniform_int8": uniform_footprint(ops, 8),
        "uniform_int4": uniform_footprint(ops, 4),
        "flexiq_full_range": flexiq_footprint(ops, 0.0, 1.0, active_ratio=1.0),
        "flexiq_full_range_cached": flexiq_footprint(
            ops, 0.0, 1.0, active_ratio=1.0, cache_extracted=True
        ),
        "flexiq_50_100_range": flexiq_footprint(ops, 0.5, 1.0, active_ratio=1.0),
    }

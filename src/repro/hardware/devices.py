"""GPU device catalog.

The throughput and bandwidth figures are the public peak specifications of
each device (dense, no sparsity).  The latency model applies an efficiency
factor on top of these peaks; what matters for reproducing the paper's
Table 4 is the *relative* balance between tensor-core throughput, CUDA-core
throughput and memory bandwidth -- in particular the A100's comparatively low
CUDA-core (FP32) rate, which bottlenecks FlexiQ's shift-and-accumulate stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class GpuSpec:
    """Peak capability description of one GPU."""

    name: str
    category: str                 # "commodity" or "datacenter"
    int8_tops: float              # tensor-core INT8, TOPS
    int4_tops: float              # tensor-core INT4, TOPS
    fp16_tflops: float            # tensor-core FP16, TFLOPS
    cuda_fp32_tflops: float       # CUDA-core FP32, TFLOPS
    memory_bandwidth_gbps: float  # GB/s
    kernel_launch_us: float = 5.0  # fixed per-kernel overhead


GPU_CATALOG: Dict[str, GpuSpec] = {
    "rtx3090": GpuSpec(
        name="rtx3090", category="commodity",
        int8_tops=284.0, int4_tops=568.0, fp16_tflops=71.0,
        cuda_fp32_tflops=35.6, memory_bandwidth_gbps=936.0,
    ),
    "a6000": GpuSpec(
        name="a6000", category="commodity",
        int8_tops=309.7, int4_tops=619.3, fp16_tflops=77.4,
        cuda_fp32_tflops=38.7, memory_bandwidth_gbps=768.0,
    ),
    "a100": GpuSpec(
        name="a100", category="datacenter",
        int8_tops=624.0, int4_tops=1248.0, fp16_tflops=312.0,
        cuda_fp32_tflops=19.5, memory_bandwidth_gbps=1555.0,
    ),
    "l40s": GpuSpec(
        name="l40s", category="datacenter",
        int8_tops=733.0, int4_tops=1466.0, fp16_tflops=362.0,
        cuda_fp32_tflops=91.6, memory_bandwidth_gbps=864.0,
    ),
}


def get_gpu(name: str) -> GpuSpec:
    """Look up a GPU by name (case-insensitive)."""
    key = name.lower()
    if key not in GPU_CATALOG:
        raise KeyError(
            f"unknown GPU {name!r}; available: {', '.join(sorted(GPU_CATALOG))}"
        )
    return GPU_CATALOG[key]

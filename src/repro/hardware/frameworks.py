"""Cost models of the deployment-framework baselines in Table 3.

Table 3 compares the paper's custom uniform INT8/INT4 kernels and the FlexiQ
kernel against CUTLASS and TensorRT.  The baselines are modelled as
multiplicative adjustments on top of the analytic GPU model, encoding the
structural reasons the paper gives for each gap:

* **CUTLASS INT8/INT4** -- the CUTLASS epilogue produces column-major output
  which must be transposed back to PyTorch's row-major layout, adding a
  memory-bound pass over the output; in the paper this makes CUTLASS INT4 as
  slow as its INT8 path.
* **TensorRT INT8** -- a well-optimised INT8 engine, slightly slower than the
  custom kernel at these batch sizes.
* **TensorRT INT4** -- TensorRT lacks full INT4 compute support; the paper
  evaluates weight-only quantization, so activations stay fp16 and compute
  runs at the fp16 tensor-core rate plus a dequantization pass.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.hardware.gpu import GpuLatencyModel
from repro.hardware.workloads import LayerOp

# Relative adjustment factors applied to the quantizable GEMM portion.
_CUTLASS_LAYOUT_OVERHEAD = 0.18      # output transpose pass
_TENSORRT_INT8_OVERHEAD = 0.13       # engine overhead vs custom kernel
_TENSORRT_WEIGHT_ONLY_DEQUANT = 0.10  # weight dequantization pass


def framework_latency(
    model: GpuLatencyModel,
    ops: Sequence[LayerOp],
    framework: str,
) -> float:
    """End-to-end latency (seconds) of a model under a framework baseline.

    ``framework`` is one of ``"cutlass_int8"``, ``"cutlass_int4"``,
    ``"tensorrt_int8"``, ``"tensorrt_int4_weight_only"``, ``"custom_int8"``,
    ``"custom_int4"``, ``"flexiq"``.
    """
    framework = framework.lower()
    if framework == "custom_int8":
        return model.model_latency(ops, "int8")
    if framework == "custom_int4":
        return model.model_latency(ops, "int4")
    if framework == "flexiq":
        return model.model_latency(ops, "flexiq", four_bit_ratio=1.0)
    if framework == "cutlass_int8":
        return _adjusted(model, ops, "int8", 1.0 + _CUTLASS_LAYOUT_OVERHEAD)
    if framework == "cutlass_int4":
        # The layout transformation dominates: the INT4 compute saving is
        # lost and the end-to-end time lands near the INT8 CUTLASS path.
        int8_like = _adjusted(model, ops, "int8", 1.0 + _CUTLASS_LAYOUT_OVERHEAD)
        return int8_like * 0.99
    if framework == "tensorrt_int8":
        return _adjusted(model, ops, "int8", 1.0 + _TENSORRT_INT8_OVERHEAD)
    if framework == "tensorrt_int4_weight_only":
        # Weight-only quantization: compute at fp16 rate + dequant pass.
        fp16 = model.model_latency(ops, "fp16")
        return fp16 * (1.0 + _TENSORRT_WEIGHT_ONLY_DEQUANT)
    raise ValueError(f"unknown framework {framework!r}")


def framework_comparison(
    model: GpuLatencyModel,
    ops: Sequence[LayerOp],
    frameworks: Sequence[str] = (
        "cutlass_int8",
        "tensorrt_int8",
        "custom_int8",
        "flexiq",
        "custom_int4",
        "cutlass_int4",
        "tensorrt_int4_weight_only",
    ),
) -> Dict[str, float]:
    """Latency of every framework baseline, keyed by framework name."""
    return {name: framework_latency(model, ops, name) for name in frameworks}


def _adjusted(
    model: GpuLatencyModel, ops: Sequence[LayerOp], mode: str, gemm_factor: float
) -> float:
    """Scale only the quantizable-GEMM portion of the latency."""
    total = model.model_latency(ops, mode)
    gemm_portion = sum(
        model.gemm_latency(op, mode)
        for op in ops
        if op.kind == "gemm" and op.quantizable
    )
    return total + gemm_portion * (gemm_factor - 1.0)

"""Analytic GPU latency model for the FlexiQ mixed-precision GEMM kernel.

The model charges three pipelined resources per operation, following the
kernel structure of Section 7:

* **Tensor cores** run the integer (or fp16) multiply-accumulate.  INT4 runs
  at twice the INT8 rate; a FlexiQ layer splits its reduction dimension
  between the two rates according to the current 4-bit channel ratio.
* **CUDA cores** perform the bit-shifted accumulation of the 4-bit partial
  sums (one shift+add per channel group per output element).  Because this
  stage is pipelined with the tensor-core stage, the compute time is the
  maximum of the two -- which is why the A100, whose CUDA-core rate is low
  relative to its tensor cores, sees smaller FlexiQ speedups (Table 4).
* **Memory** moves weights (always stored in 8 bits for FlexiQ so the ratio
  can change at run time; 4-bit models store 4-bit weights), activations and
  outputs.

Per-operation framework overhead models the PyTorch dispatch cost that
dominates small-batch latency in the paper's absolute numbers.  Absolute
milliseconds are approximate by design; the quantities being reproduced are
the orderings and ratios across precisions, ratios, batch sizes and devices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.hardware.devices import GpuSpec, get_gpu
from repro.hardware.workloads import LayerOp


@dataclass
class GpuModelConfig:
    """Tunable constants of the latency model."""

    tensor_core_efficiency: float = 0.24   # fraction of peak sustained on GEMMs
    fp16_efficiency: float = 0.30
    cuda_core_efficiency: float = 0.35
    memory_efficiency: float = 0.70
    per_op_overhead_us: float = 33.0       # framework / launch overhead per op
    flexiq_kernel_overhead: float = 0.06   # dynamic-ratio kernel vs uniform INT4
    dynamic_extract_overhead: float = 0.035  # optional runtime bit-OR pass (2-5%)
    group_size: int = 32                   # channels per MMA group (Section 7)
    shift_accumulate_flops: float = 1.5    # CUDA-core flops per group partial sum


class GpuLatencyModel:
    """Latency estimates for whole models and individual GEMMs on a GPU."""

    def __init__(
        self,
        gpu: str | GpuSpec = "a6000",
        config: GpuModelConfig = GpuModelConfig(),
    ) -> None:
        self.spec = gpu if isinstance(gpu, GpuSpec) else get_gpu(gpu)
        self.config = config

    # ------------------------------------------------------------------
    # Per-op latency
    # ------------------------------------------------------------------
    def _memory_seconds(self, op: LayerOp, weight_bytes_per_elem: float,
                        act_bytes_per_elem: float) -> float:
        weight_bytes = op.n * op.k * weight_bytes_per_elem
        act_bytes = op.m * op.k * act_bytes_per_elem
        out_bytes = op.m * op.n * 2.0  # fp16 outputs
        bandwidth = self.spec.memory_bandwidth_gbps * 1e9 * self.config.memory_efficiency
        return (weight_bytes + act_bytes + out_bytes) / bandwidth

    def _tensor_core_seconds(self, macs: float, tops: float, efficiency: float) -> float:
        if macs <= 0:
            return 0.0
        return (2.0 * macs) / (tops * 1e12 * efficiency)

    def float_op_latency(self, op: LayerOp) -> float:
        """Latency of a non-quantizable fp16 operation."""
        compute = self._tensor_core_seconds(
            op.macs, self.spec.fp16_tflops, self.config.fp16_efficiency
        )
        memory = self._memory_seconds(op, weight_bytes_per_elem=0.0, act_bytes_per_elem=2.0)
        return max(compute, memory) + self.config.per_op_overhead_us * 1e-6

    def gemm_latency(
        self,
        op: LayerOp,
        mode: str,
        four_bit_ratio: float = 0.0,
        dynamic_extraction: bool = False,
    ) -> float:
        """Latency of one quantizable GEMM.

        ``mode`` is one of ``"int8"``, ``"int4"``, ``"fp16"``, ``"flexiq"``.
        ``four_bit_ratio`` only applies to the FlexiQ mode.
        """
        cfg = self.config
        overhead = cfg.per_op_overhead_us * 1e-6
        if mode == "fp16":
            compute = self._tensor_core_seconds(
                op.macs, self.spec.fp16_tflops, cfg.fp16_efficiency
            )
            memory = self._memory_seconds(op, 2.0, 2.0)
            return max(compute, memory) + overhead
        if mode == "int8":
            compute = self._tensor_core_seconds(
                op.macs, self.spec.int8_tops, cfg.tensor_core_efficiency
            )
            memory = self._memory_seconds(op, 1.0, 1.0)
            return max(compute, memory) + overhead
        if mode == "int4":
            compute = self._tensor_core_seconds(
                op.macs, self.spec.int4_tops, cfg.tensor_core_efficiency
            )
            memory = self._memory_seconds(op, 0.5, 0.5)
            return max(compute, memory) + overhead
        if mode == "flexiq":
            return self._flexiq_gemm_latency(op, four_bit_ratio, dynamic_extraction)
        raise ValueError(f"unknown mode {mode!r}")

    def _flexiq_gemm_latency(
        self, op: LayerOp, four_bit_ratio: float, dynamic_extraction: bool
    ) -> float:
        cfg = self.config
        ratio = min(max(four_bit_ratio, 0.0), 1.0)
        macs_low = op.macs * ratio
        macs_high = op.macs * (1.0 - ratio)

        tensor_time = self._tensor_core_seconds(
            macs_high, self.spec.int8_tops, cfg.tensor_core_efficiency
        ) + self._tensor_core_seconds(
            macs_low, self.spec.int4_tops, cfg.tensor_core_efficiency
        )
        # Shift-and-accumulate of 4-bit group partial sums on CUDA cores.
        low_channels = op.k * ratio
        groups = low_channels / max(cfg.group_size, 1)
        cuda_flops = op.m * op.n * groups * cfg.shift_accumulate_flops
        cuda_time = cuda_flops / (
            self.spec.cuda_fp32_tflops * 1e12 * cfg.cuda_core_efficiency
        )
        compute = max(tensor_time, cuda_time)
        # The dynamic-ratio kernel's bookkeeping (bit extraction, group
        # boundary handling) costs ~6% on the 4-bit portion relative to the
        # uniform INT4 kernel; at ratio 0 the kernel degenerates to the plain
        # INT8 path.
        compute *= 1.0 + cfg.flexiq_kernel_overhead * ratio
        if dynamic_extraction:
            compute *= 1.0 + cfg.dynamic_extract_overhead * ratio

        # FlexiQ keeps 8-bit weights resident so the ratio can change at
        # run time; activations are read at 8-bit.
        memory = self._memory_seconds(op, 1.0, 1.0)
        return max(compute, memory) + cfg.per_op_overhead_us * 1e-6

    # ------------------------------------------------------------------
    # Whole-model latency
    # ------------------------------------------------------------------
    def model_latency(
        self,
        ops: Sequence[LayerOp],
        mode: str,
        four_bit_ratio: float = 0.0,
        dynamic_extraction: bool = False,
        per_layer_ratio: Optional[Dict[str, float]] = None,
    ) -> float:
        """End-to-end latency (seconds) of a model under one precision mode.

        ``per_layer_ratio`` optionally overrides the global 4-bit ratio per
        layer name (used when replaying the ratios chosen by the selection
        algorithm rather than a uniform ratio).
        """
        total = 0.0
        for op in ops:
            if op.kind == "float" or not op.quantizable:
                if op.kind == "float":
                    total += self.float_op_latency(op)
                else:
                    # Non-quantizable GEMMs (first/last layers) run at 8-bit.
                    total += self.gemm_latency(op, "int8" if mode != "fp16" else "fp16")
                continue
            if mode == "flexiq":
                ratio = (
                    per_layer_ratio.get(op.name, four_bit_ratio)
                    if per_layer_ratio
                    else four_bit_ratio
                )
                total += self.gemm_latency(
                    op, "flexiq", four_bit_ratio=ratio,
                    dynamic_extraction=dynamic_extraction,
                )
            else:
                total += self.gemm_latency(op, mode)
        return total

    def latency_breakdown(
        self,
        ops: Sequence[LayerOp],
        mode: str,
        four_bit_ratio: float = 0.0,
    ) -> Dict[str, float]:
        """Per-op latency contributions (seconds), keyed by op name."""
        breakdown: Dict[str, float] = {}
        for op in ops:
            if op.kind == "float" or not op.quantizable:
                latency = (
                    self.float_op_latency(op)
                    if op.kind == "float"
                    else self.gemm_latency(op, "int8")
                )
            elif mode == "flexiq":
                latency = self.gemm_latency(op, "flexiq", four_bit_ratio=four_bit_ratio)
            else:
                latency = self.gemm_latency(op, mode)
            breakdown[op.name] = latency
        return breakdown

    def ratio_switch_latency(self) -> float:
        """Cost of changing the 4-bit ratio: one variable update per layer.

        The paper measures this at a few microseconds on GPUs; it is modelled
        as a single small constant.
        """
        return 2e-6

"""Functional simulator of the mixed-precision GEMM kernel.

The latency models in :mod:`repro.hardware.gpu` are analytic; this module
complements them with a *functional* kernel that performs the exact integer
arithmetic the hardware would: per-group bit extraction of activations and
weights, 4-bit multiply-accumulate of the extracted values, bit-shifted
accumulation into the 8-bit partial sums.  It is used to

* verify that the FlexiQ runtime layers (:mod:`repro.core.runtime`) and the
  hardware kernel produce identical results, and
* count the operations (MMA instructions, shift-adds, bytes moved) that the
  latency models charge -- the Section 8.6 overhead analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.bit_extraction import lower_bits
from repro.quant.quantizers import int_range


@dataclass
class KernelStats:
    """Operation counts accumulated by the functional kernel."""

    mma_int8: int = 0
    mma_int4: int = 0
    shift_accumulates: int = 0
    dynamic_or_reductions: int = 0
    weight_bytes: int = 0
    activation_bytes: int = 0

    def merge(self, other: "KernelStats") -> "KernelStats":
        return KernelStats(
            mma_int8=self.mma_int8 + other.mma_int8,
            mma_int4=self.mma_int4 + other.mma_int4,
            shift_accumulates=self.shift_accumulates + other.shift_accumulates,
            dynamic_or_reductions=self.dynamic_or_reductions + other.dynamic_or_reductions,
            weight_bytes=self.weight_bytes + other.weight_bytes,
            activation_bytes=self.activation_bytes + other.activation_bytes,
        )


def mixed_gemm_reference(
    q_x: np.ndarray,
    q_w: np.ndarray,
    boundary: int,
    act_shift: np.ndarray,
    weight_shift: np.ndarray,
    low_bits: int = 4,
) -> np.ndarray:
    """Reference mixed-precision GEMM: ``q_x @ q_w.T`` with a 4-bit prefix.

    ``q_x``: (rows, K) int activations; ``q_w``: (N, K) int weights;
    the first ``boundary`` columns use extracted ``low_bits`` values with the
    given per-channel shifts, the remainder full 8-bit values.
    """
    q_x = np.asarray(q_x, dtype=np.int64)
    q_w = np.asarray(q_w, dtype=np.int64)
    acc = np.zeros((q_x.shape[0], q_w.shape[0]), dtype=np.int64)
    if boundary > 0:
        a_shift = np.asarray(act_shift[:boundary], dtype=np.int64)
        w_shift = np.asarray(weight_shift[:boundary], dtype=np.int64)
        x_low = lower_bits(q_x[:, :boundary], a_shift[None, :], low_bits).astype(np.int64)
        w_low = lower_bits(q_w[:, :boundary], w_shift[None, :], low_bits).astype(np.int64)
        shifted_x = x_low << a_shift[None, :]
        shifted_w = w_low << w_shift[None, :]
        acc += shifted_x @ shifted_w.T
    if boundary < q_x.shape[1]:
        acc += q_x[:, boundary:] @ q_w[:, boundary:].T
    return acc


class MixedPrecisionGemm:
    """Group-structured mixed GEMM with explicit per-group accumulation.

    This follows the hardware dataflow: the reduction dimension is split into
    channel groups; each 4-bit group produces a partial sum via an INT4 MMA
    which is then shifted by the group's extraction position and added to the
    accumulator; 8-bit groups accumulate directly.
    """

    def __init__(self, group_size: int = 32, low_bits: int = 4, high_bits: int = 8) -> None:
        if group_size <= 0:
            raise ValueError("group_size must be positive")
        self.group_size = group_size
        self.low_bits = low_bits
        self.high_bits = high_bits
        self.stats = KernelStats()

    def reset_stats(self) -> None:
        self.stats = KernelStats()

    def __call__(
        self,
        q_x: np.ndarray,
        q_w: np.ndarray,
        max_4bit_ch: int,
        act_shift: np.ndarray,
        weight_shift: np.ndarray,
        dynamic_extraction: bool = False,
    ) -> np.ndarray:
        """Run the kernel; returns the int accumulator (rows, N)."""
        q_x = np.asarray(q_x, dtype=np.int64)
        q_w = np.asarray(q_w, dtype=np.int64)
        rows, channels = q_x.shape
        n_out = q_w.shape[0]
        if q_w.shape[1] != channels:
            raise ValueError("activation/weight channel mismatch")
        if not 0 <= max_4bit_ch <= channels:
            raise ValueError("max_4bit_ch out of range")

        acc = np.zeros((rows, n_out), dtype=np.int64)
        self.stats.weight_bytes += q_w.size  # weights stored as 8-bit
        self.stats.activation_bytes += q_x.size

        group = self.group_size
        for start in range(0, channels, group):
            stop = min(start + group, channels)
            x_slice = q_x[:, start:stop]
            w_slice = q_w[:, start:stop]
            if stop <= max_4bit_ch:
                # 4-bit group: extract, multiply in 4-bit, shift-accumulate.
                a_shift = int(act_shift[start:stop].max())
                w_shift = int(weight_shift[start:stop].max())
                if dynamic_extraction:
                    observed = int(np.abs(x_slice).max()) if x_slice.size else 0
                    a_shift = _shift_for(observed, self.high_bits, self.low_bits)
                    self.stats.dynamic_or_reductions += x_slice.size
                x_low = lower_bits(x_slice, a_shift, self.low_bits).astype(np.int64)
                w_low = lower_bits(w_slice, w_shift, self.low_bits).astype(np.int64)
                partial = x_low @ w_low.T
                acc += partial << (a_shift + w_shift)
                self.stats.mma_int4 += rows * n_out * (stop - start)
                self.stats.shift_accumulates += rows * n_out
            else:
                acc += x_slice @ w_slice.T
                self.stats.mma_int8 += rows * n_out * (stop - start)
        return acc


def _shift_for(max_abs: int, high_bits: int, low_bits: int) -> int:
    """Extraction shift for a single observed maximum magnitude."""
    naive = high_bits - low_bits
    if max_abs <= 0:
        return 0
    used = int(np.ceil(np.log2(max_abs + 1)))
    return int(np.clip(used - (low_bits - 1), 0, naive))


def uniform_gemm_reference(q_x: np.ndarray, q_w: np.ndarray, bits: int) -> np.ndarray:
    """Uniform integer GEMM used as the INT4/INT8 baseline kernel."""
    qmin, qmax = int_range(bits)
    q_x = np.clip(np.asarray(q_x, dtype=np.int64), qmin, qmax)
    q_w = np.clip(np.asarray(q_w, dtype=np.int64), qmin, qmax)
    return q_x @ q_w.T

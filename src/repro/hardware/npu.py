"""Cycle-level latency model of the custom mixed-precision NPU (Section 7).

The modelled device follows the paper's DNNWeaver-v2 extension:

* a 32x32 systolic array of processing elements (PEs), weight-stationary;
* each PE contains four 4-bit MAC units: in 8-bit mode the four units
  combine into one 8-bit MAC per cycle, in 4-bit mode two units operate in
  parallel, doubling MAC throughput;
* rows of the array map to input (feature) channels and columns to output
  channels, so fully utilising 4-bit mode needs input-channel groups of 64
  (2 x 32 rows) -- the NPU channel-group constraint used during selection;
* switching between 4-bit and 8-bit channel regions causes no pipeline
  bubbles (same data bandwidth, same PE latency);
* outputs feeding residual connections are additionally stored reordered,
  costing ~3% of the layer's execution (Section 5, step 3), and loading
  8-bit tensors instead of 4-bit ones costs an extra 1-2% at high 4-bit
  ratios (Section 8.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.hardware.workloads import LayerOp


@dataclass(frozen=True)
class NpuConfig:
    """Architectural parameters of the NPU."""

    array_rows: int = 32
    array_cols: int = 32
    macs_per_pe: int = 4
    clock_mhz: float = 200.0
    memory_bandwidth_gbps: float = 25.6    # DDR-class external memory
    weight_load_overlap: float = 0.8       # fraction of weight loads hidden by compute
    residual_reorder_overhead: float = 0.03
    eight_bit_load_overhead: float = 0.015
    instruction_load_us: float = 0.3       # ratio-switch cost (Section 8.5)

    @property
    def channel_group(self) -> int:
        """Input-channel group needed to fill the array in 4-bit mode (64)."""
        return self.array_rows * 2

    def channel_group_for(self, low_bits: int) -> int:
        """Input-channel group needed to fill the array at ``low_bits``.

        Each PE holds four 4-bit MAC units: 4-bit mode runs two MACs per PE
        (group 64), the 2-bit extension (Section 7, "Supporting Lower
        Precisions") splits each 4-bit MAC into two 2-bit MACs for four per
        PE (group 128).
        """
        if low_bits not in (2, 4, 8):
            raise ValueError("the NPU supports 2-, 4- and 8-bit computation")
        return self.array_rows * (8 // low_bits)

    def low_bit_parallelism(self, low_bits: int) -> int:
        """MACs per PE per cycle at ``low_bits`` (1 at 8-bit, 2 at 4, 4 at 2)."""
        if low_bits not in (2, 4, 8):
            raise ValueError("the NPU supports 2-, 4- and 8-bit computation")
        return 8 // low_bits


class NpuLatencyModel:
    """Latency estimates for convolution/linear layers on the NPU."""

    def __init__(self, config: NpuConfig = NpuConfig()) -> None:
        self.config = config

    # ------------------------------------------------------------------
    # Per-op cycle counts
    # ------------------------------------------------------------------
    def op_cycles(
        self, op: LayerOp, four_bit_ratio: float = 0.0, low_bits: int = 4
    ) -> float:
        """Compute cycles for one GEMM-shaped op with a low-bit channel prefix.

        In 8-bit mode the array retires ``rows * cols`` MACs per cycle; the
        low-precision portion of the reduction dimension retires 2x (4-bit)
        or 4x (2-bit extension) that rate.  Tiling inefficiency is modelled
        by rounding the reduction and output dimensions up to multiples of
        the array size; the larger channel groups required by lower
        precisions additionally round the low-precision span up to a whole
        group, capturing the utilisation/granularity trade-off the paper
        discusses for the 2-bit extension.
        """
        cfg = self.config
        rows, cols = cfg.array_rows, cfg.array_cols
        parallelism = cfg.low_bit_parallelism(low_bits)
        k_tiles = int(np.ceil(op.k / rows))
        n_tiles = int(np.ceil(op.n / cols))
        effective_k = k_tiles * rows
        effective_n = n_tiles * cols

        ratio = min(max(four_bit_ratio, 0.0), 1.0)
        k_low = effective_k * ratio
        if k_low > 0:
            group = cfg.channel_group_for(low_bits)
            k_low = min(np.ceil(k_low / group) * group, effective_k)
        k_high = effective_k - k_low
        # One output row per cycle per (k-tile, n-tile) pass; the low-bit
        # prefix divides the passes needed by the per-PE MAC parallelism.
        cycles_high = op.m * (k_high / rows) * n_tiles
        cycles_low = op.m * (k_low / rows) * n_tiles / parallelism
        compute_cycles = cycles_high + cycles_low

        # Weight loading (weight-stationary: each tile loaded once), partially
        # overlapped with compute.
        weight_elems = effective_k * effective_n
        bytes_per_weight = 1.0  # weights stored as 8-bit to allow ratio changes
        load_cycles = (
            weight_elems * bytes_per_weight
            / (cfg.memory_bandwidth_gbps * 1e9 / (cfg.clock_mhz * 1e6))
        )
        exposed_load = load_cycles * (1.0 - cfg.weight_load_overlap)
        return compute_cycles + exposed_load

    def op_latency(
        self, op: LayerOp, four_bit_ratio: float = 0.0, low_bits: int = 4
    ) -> float:
        """Latency in seconds of one op."""
        cycles = self.op_cycles(op, four_bit_ratio, low_bits=low_bits)
        seconds = cycles / (self.config.clock_mhz * 1e6)
        if op.residual_reorder:
            seconds *= 1.0 + self.config.residual_reorder_overhead
        if four_bit_ratio > 0:
            # Loading 8-bit tensors where a pure 4-bit model would load 4-bit.
            seconds *= 1.0 + self.config.eight_bit_load_overhead * four_bit_ratio
        return seconds

    # ------------------------------------------------------------------
    # Whole-model latency
    # ------------------------------------------------------------------
    def model_latency(
        self,
        ops: Sequence[LayerOp],
        four_bit_ratio: float = 0.0,
        per_layer_ratio: Optional[Dict[str, float]] = None,
        include_non_quantizable: bool = False,
        low_bits: int = 4,
    ) -> float:
        """Latency (seconds) of a model at a given 4-bit channel ratio.

        The paper excludes the 3-channel stem from NPU measurements (it does
        not map onto weight-stationary parallelism); ``include_non_quantizable``
        keeps that behaviour switchable.
        """
        total = 0.0
        for op in ops:
            if op.kind == "float":
                continue
            if not op.quantizable and not include_non_quantizable:
                continue
            ratio = (
                per_layer_ratio.get(op.name, four_bit_ratio)
                if per_layer_ratio
                else four_bit_ratio
            )
            if not op.quantizable:
                ratio = 0.0
            total += self.op_latency(op, four_bit_ratio=ratio, low_bits=low_bits)
        return total

    def ratio_switch_latency(self) -> float:
        """Cost of loading the instructions for a new ratio (< 0.3 us)."""
        return self.config.instruction_load_us * 1e-6

    def as_service_backend(self) -> "NpuServiceAdapter":
        """Adapt this NPU model to the GPU-style serving latency interface."""
        return NpuServiceAdapter(self)

    def utilization(self, op: LayerOp, four_bit_ratio: float = 0.0) -> float:
        """Fraction of peak MAC throughput achieved on an op."""
        cfg = self.config
        cycles = self.op_cycles(op, four_bit_ratio)
        peak_macs_per_cycle = cfg.array_rows * cfg.array_cols * (
            1.0 + min(max(four_bit_ratio, 0.0), 1.0)
        )
        if cycles <= 0:
            return 0.0
        return min(op.macs / (cycles * peak_macs_per_cycle), 1.0)


class NpuServiceAdapter:
    """Mode-aware facade over :class:`NpuLatencyModel` for the serving layer.

    :class:`~repro.serving.simulator.ServiceTimeModel` talks to latency
    backends through the GPU signature ``model_latency(ops, mode,
    four_bit_ratio=...)``; the NPU's native interface has no ``mode``
    argument (the array computes in integer precision only, with a 4-bit
    channel prefix).  This adapter maps the serving modes onto NPU ratios —
    ``"int8"`` is ratio 0, ``"int4"`` is ratio 1, ``"flexiq"`` uses the
    requested ratio — so heterogeneous clusters can mix GPU- and NPU-backed
    servers behind one engine (see :func:`repro.serving.cluster.npu_server`).

    Serving totals include the non-quantizable stem/head layers (unlike the
    paper's NPU microbenchmarks, which exclude them): a request pays for the
    whole forward.  ``dynamic_extraction`` is accepted for signature
    compatibility and ignored — runtime bit-extraction is free on the NPU
    (Section 7; the low-bit planes are native operands).
    """

    def __init__(self, npu: Optional[NpuLatencyModel] = None) -> None:
        self.npu = npu if npu is not None else NpuLatencyModel()

    def model_latency(
        self,
        ops: Sequence[LayerOp],
        mode: str,
        four_bit_ratio: float = 0.0,
        dynamic_extraction: bool = False,
        per_layer_ratio: Optional[Dict[str, float]] = None,
    ) -> float:
        if mode == "int8":
            ratio = 0.0
        elif mode == "int4":
            ratio = 1.0
        elif mode == "flexiq":
            ratio = float(four_bit_ratio)
        else:
            raise ValueError(
                f"the NPU serves int8/int4/flexiq modes, not {mode!r}"
            )
        return self.npu.model_latency(
            ops,
            four_bit_ratio=ratio,
            per_layer_ratio=per_layer_ratio if mode == "flexiq" else None,
            include_non_quantizable=True,
        )

    def ratio_switch_latency(self) -> float:
        return self.npu.ratio_switch_latency()

"""Paper-scale layer shapes for the latency experiments.

The accuracy experiments use the scaled-down model zoo, but the latency
models need the *original* layer geometries (ViT-Base on 224x224 images,
ResNet-18, ...) because the paper reports milliseconds for those shapes.
This module expresses every model as a list of :class:`LayerOp` records --
GEMMs, convolutions (as implicit GEMMs) and non-quantizable float ops -- that
the GPU/NPU latency models consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class LayerOp:
    """One operation of a model, normalised to GEMM form.

    Attributes
    ----------
    name:
        Human-readable identifier ("block3.mlp.fc1", ...).
    m, n, k:
        GEMM dimensions: output is (m, n), reduction length k.  For a
        convolution, ``m = batch * out_h * out_w``, ``n = out_channels`` and
        ``k = in_channels * kernel**2``.
    kind:
        ``"gemm"`` for quantizable linear/conv operations, ``"float"`` for
        operations kept in 16-bit float (attention softmax, normalisation,
        GELU, elementwise adds).
    quantizable:
        Whether FlexiQ may lower this op's feature channels to 4-bit.  The
        first and last layers of every network are marked non-quantizable.
    feature_channels:
        Number of feature channels (the FlexiQ selection axis); for convs the
        reduction length k equals ``feature_channels * kernel**2``.
    residual_reorder:
        Whether this op's output feeds a residual connection that requires a
        runtime channel reorder after layout optimization.
    """

    name: str
    m: int
    n: int
    k: int
    kind: str = "gemm"
    quantizable: bool = True
    feature_channels: int = 0
    residual_reorder: bool = False

    @property
    def macs(self) -> int:
        """Multiply-accumulate count of the op."""
        return int(self.m) * int(self.n) * int(self.k)

    @property
    def flops(self) -> int:
        return 2 * self.macs


# ----------------------------------------------------------------------
# Transformers
# ----------------------------------------------------------------------
def vit_ops(
    batch: int,
    embed_dim: int = 768,
    depth: int = 12,
    num_heads: int = 12,
    mlp_ratio: float = 4.0,
    tokens: int = 197,
    patch: int = 16,
    image: int = 224,
) -> List[LayerOp]:
    """Layer operations of a ViT/DeiT encoder (defaults = ViT-Base)."""
    ops: List[LayerOp] = []
    grid = image // patch
    ops.append(
        LayerOp(
            name="patch_embed", m=batch * grid * grid, n=embed_dim,
            k=3 * patch * patch, quantizable=False, feature_channels=3,
        )
    )
    hidden = int(embed_dim * mlp_ratio)
    rows = batch * tokens
    head_dim = embed_dim // num_heads
    for block in range(depth):
        prefix = f"block{block}"
        for proj in ("q", "k", "v"):
            ops.append(
                LayerOp(
                    name=f"{prefix}.attn.{proj}_proj", m=rows, n=embed_dim,
                    k=embed_dim, feature_channels=embed_dim,
                )
            )
        # Attention score and context matmuls stay in 16-bit float.
        ops.append(
            LayerOp(
                name=f"{prefix}.attn.scores", m=batch * num_heads * tokens,
                n=tokens, k=head_dim, kind="float", quantizable=False,
            )
        )
        ops.append(
            LayerOp(
                name=f"{prefix}.attn.context", m=batch * num_heads * tokens,
                n=head_dim, k=tokens, kind="float", quantizable=False,
            )
        )
        ops.append(
            LayerOp(
                name=f"{prefix}.attn.out_proj", m=rows, n=embed_dim,
                k=embed_dim, feature_channels=embed_dim,
            )
        )
        ops.append(
            LayerOp(
                name=f"{prefix}.mlp.fc1", m=rows, n=hidden, k=embed_dim,
                feature_channels=embed_dim,
            )
        )
        ops.append(
            LayerOp(
                name=f"{prefix}.mlp.fc2", m=rows, n=embed_dim, k=hidden,
                feature_channels=hidden,
            )
        )
        # LayerNorm / GELU / residual adds, kept in fp16.
        ops.append(
            LayerOp(
                name=f"{prefix}.elementwise", m=rows, n=embed_dim, k=4,
                kind="float", quantizable=False,
            )
        )
    ops.append(
        LayerOp(
            name="head", m=batch, n=1000, k=embed_dim,
            quantizable=False, feature_channels=embed_dim,
        )
    )
    return ops


def vit_small_ops(batch: int) -> List[LayerOp]:
    """ViT-Small / DeiT-Small geometry."""
    return vit_ops(batch, embed_dim=384, depth=12, num_heads=6)


def deit_base_ops(batch: int) -> List[LayerOp]:
    return vit_ops(batch, embed_dim=768, depth=12, num_heads=12)


def swin_ops(
    batch: int,
    embed_dim: int = 96,
    depths: tuple = (2, 2, 18, 2),
    image: int = 224,
    window: int = 7,
    mlp_ratio: float = 4.0,
) -> List[LayerOp]:
    """Layer operations of a Swin transformer (defaults = Swin-Small)."""
    ops: List[LayerOp] = []
    grid = image // 4
    dim = embed_dim
    ops.append(
        LayerOp(
            name="patch_embed", m=batch * grid * grid, n=dim, k=3 * 4 * 4,
            quantizable=False, feature_channels=3,
        )
    )
    for stage, depth in enumerate(depths):
        tokens = grid * grid
        rows = batch * tokens
        hidden = int(dim * mlp_ratio)
        heads = dim // 32
        for block in range(depth):
            prefix = f"stage{stage}.block{block}"
            for proj in ("q", "k", "v"):
                ops.append(
                    LayerOp(
                        name=f"{prefix}.attn.{proj}_proj", m=rows, n=dim, k=dim,
                        feature_channels=dim,
                    )
                )
            window_tokens = window * window
            num_windows = max(tokens // window_tokens, 1)
            ops.append(
                LayerOp(
                    name=f"{prefix}.attn.scores",
                    m=batch * num_windows * heads * window_tokens,
                    n=window_tokens, k=dim // max(heads, 1),
                    kind="float", quantizable=False,
                )
            )
            ops.append(
                LayerOp(
                    name=f"{prefix}.attn.out_proj", m=rows, n=dim, k=dim,
                    feature_channels=dim,
                )
            )
            ops.append(
                LayerOp(
                    name=f"{prefix}.mlp.fc1", m=rows, n=hidden, k=dim,
                    feature_channels=dim,
                )
            )
            ops.append(
                LayerOp(
                    name=f"{prefix}.mlp.fc2", m=rows, n=dim, k=hidden,
                    feature_channels=hidden,
                )
            )
            ops.append(
                LayerOp(
                    name=f"{prefix}.elementwise", m=rows, n=dim, k=4,
                    kind="float", quantizable=False,
                )
            )
        if stage < len(depths) - 1:
            ops.append(
                LayerOp(
                    name=f"stage{stage}.merge", m=batch * (grid // 2) ** 2,
                    n=dim * 2, k=dim * 4, feature_channels=dim * 4,
                )
            )
            grid //= 2
            dim *= 2
    ops.append(
        LayerOp(
            name="head", m=batch, n=1000, k=dim, quantizable=False,
            feature_channels=dim,
        )
    )
    return ops


# ----------------------------------------------------------------------
# CNNs
# ----------------------------------------------------------------------
def _conv_op(
    name: str, batch: int, in_ch: int, out_ch: int, spatial: int, kernel: int,
    stride: int = 1, quantizable: bool = True, residual_reorder: bool = False,
) -> LayerOp:
    out_spatial = spatial // stride
    return LayerOp(
        name=name,
        m=batch * out_spatial * out_spatial,
        n=out_ch,
        k=in_ch * kernel * kernel,
        quantizable=quantizable,
        feature_channels=in_ch,
        residual_reorder=residual_reorder,
    )


def resnet_ops(
    batch: int,
    stage_blocks: tuple = (2, 2, 2, 2),
    image: int = 224,
    bottleneck: bool = False,
) -> List[LayerOp]:
    """Layer operations of a ResNet (defaults = ResNet-18 on 224x224)."""
    ops: List[LayerOp] = []
    channels = [64, 128, 256, 512]
    # The paper excludes the 3-channel stem from NPU latency (Section 8.3);
    # it is marked non-quantizable and handled by the caller.
    ops.append(_conv_op("stem", batch, 3, 64, image // 2, 7, stride=2, quantizable=False))
    spatial = image // 4
    in_ch = 64
    for stage, blocks in enumerate(stage_blocks):
        out_ch = channels[stage]
        for block in range(blocks):
            stride = 2 if (stage > 0 and block == 0) else 1
            prefix = f"stage{stage}.block{block}"
            if bottleneck:
                mid = out_ch
                expanded = out_ch * 4
                ops.append(_conv_op(f"{prefix}.conv1", batch, in_ch, mid, spatial, 1, stride=1))
                ops.append(_conv_op(f"{prefix}.conv2", batch, mid, mid, spatial, 3, stride=stride))
                ops.append(
                    _conv_op(
                        f"{prefix}.conv3", batch, mid, expanded, spatial // stride, 1,
                        residual_reorder=True,
                    )
                )
                if stride != 1 or in_ch != expanded:
                    ops.append(
                        _conv_op(f"{prefix}.downsample", batch, in_ch, expanded, spatial, 1, stride=stride)
                    )
                in_ch = expanded
            else:
                ops.append(_conv_op(f"{prefix}.conv1", batch, in_ch, out_ch, spatial, 3, stride=stride))
                ops.append(
                    _conv_op(
                        f"{prefix}.conv2", batch, out_ch, out_ch, spatial // stride, 3,
                        residual_reorder=True,
                    )
                )
                if stride != 1 or in_ch != out_ch:
                    ops.append(
                        _conv_op(f"{prefix}.downsample", batch, in_ch, out_ch, spatial, 1, stride=stride)
                    )
                in_ch = out_ch
            spatial //= stride
    ops.append(
        LayerOp(
            name="head", m=batch, n=1000, k=in_ch, quantizable=False,
            feature_channels=in_ch,
        )
    )
    return ops


def resnet50_ops(batch: int, image: int = 224) -> List[LayerOp]:
    return resnet_ops(batch, stage_blocks=(3, 4, 6, 3), image=image, bottleneck=True)


def resnet34_ops(batch: int, image: int = 224) -> List[LayerOp]:
    return resnet_ops(batch, stage_blocks=(3, 4, 6, 3), image=image, bottleneck=False)


def model_ops(model_name: str, batch: int) -> List[LayerOp]:
    """Paper-scale layer operations for a registry model name."""
    builders = {
        "vit_base": lambda: vit_ops(batch),
        "deit_base": lambda: deit_base_ops(batch),
        "vit_small": lambda: vit_small_ops(batch),
        "deit_small": lambda: vit_small_ops(batch),
        "swin_small": lambda: swin_ops(batch),
        "swin_base": lambda: swin_ops(batch, embed_dim=128),
        "resnet18": lambda: resnet_ops(batch),
        "resnet34": lambda: resnet34_ops(batch),
        "resnet50": lambda: resnet50_ops(batch),
        "resnet20": lambda: resnet_ops(batch, stage_blocks=(3, 3, 3), image=32),
        "mobilenet_v2": lambda: resnet_ops(batch, stage_blocks=(1, 2, 3, 4), image=224),
    }
    if model_name not in builders:
        raise KeyError(f"no workload shapes registered for {model_name!r}")
    return builders[model_name]()

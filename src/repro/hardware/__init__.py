"""Hardware latency models and functional kernel simulators.

The paper evaluates FlexiQ on a custom DNNWeaver-v2-based NPU and on four
GPUs with a CUTLASS-based mixed-precision GEMM kernel.  Neither is available
offline, so this package provides:

* :mod:`repro.hardware.devices` -- a catalog of GPU device parameters
  (tensor-core/CUDA-core throughput, memory bandwidth).
* :mod:`repro.hardware.workloads` -- paper-scale layer shapes (ViT-Base,
  ResNet-18, ...) expressed as GEMM/convolution operations.
* :mod:`repro.hardware.gpu` -- an analytic latency model of the FlexiQ mixed
  GEMM kernel (tensor cores for multiply-add, CUDA cores for the bit-shifted
  accumulation, pipelined) plus whole-model latency estimation.
* :mod:`repro.hardware.npu` -- a cycle model of the 32x32 systolic-array NPU
  with 4-bit/8-bit MAC modes.
* :mod:`repro.hardware.kernels` -- functional integer mixed-precision GEMM
  used to validate numerics and count the operations the latency models charge.
* :mod:`repro.hardware.frameworks` -- CUTLASS / TensorRT baseline cost models
  for Table 3.
"""

from repro.hardware.devices import GPU_CATALOG, GpuSpec, get_gpu
from repro.hardware.workloads import LayerOp, model_ops, vit_ops, resnet_ops
from repro.hardware.gpu import GpuLatencyModel
from repro.hardware.npu import NpuConfig, NpuLatencyModel, NpuServiceAdapter
from repro.hardware.kernels import MixedPrecisionGemm, mixed_gemm_reference
from repro.hardware.frameworks import framework_latency
from repro.hardware.memory import MemoryFootprint, flexiq_footprint, resource_report, uniform_footprint

__all__ = [
    "GPU_CATALOG",
    "GpuLatencyModel",
    "GpuSpec",
    "LayerOp",
    "MemoryFootprint",
    "MixedPrecisionGemm",
    "NpuConfig",
    "NpuLatencyModel",
    "NpuServiceAdapter",
    "flexiq_footprint",
    "framework_latency",
    "get_gpu",
    "mixed_gemm_reference",
    "model_ops",
    "resnet_ops",
    "resource_report",
    "uniform_footprint",
    "vit_ops",
]

"""FlexiQ mixed-precision runtime layers and model wrapper.

A FlexiQ layer stores 8-bit weights (per-output-channel scales) and computes
a leading prefix of its feature channels in 4-bit, the rest in 8-bit.  The
prefix length (``max_4bit_ch``) is the only state that changes when the
runtime adjusts the 4-bit ratio, mirroring the kernel described in Section 7.

The 4-bit path uses the effective bit extraction of Section 4.1: each channel
group has an extraction shift; activations and weights are lowered by their
shifts, multiplied as small integers, and the product is scaled back by
``2**(shift_w + shift_a)`` before being accumulated with the 8-bit partial
sums.  Because the per-channel rescale factorises into the two operands, the
functional kernel applies it per operand; the hardware models account for the
grouped shift-accumulate structure the real kernels use.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.bit_extraction import (
    BitExtractionPlan,
    extraction_shift,
    group_shared_max,
    lower_bits,
)
from repro.core.layout import ChannelLayout, LayoutPlan
from repro.core.prepared import PreparedKernel, prepare_model
from repro.nn.layers import Conv2d, Linear
from repro.nn.module import Module
from repro.quant.qmodules import QuantConv2d, QuantLinear, QuantizedLayer
from repro.quant.quantizers import quantize, quantize_cast
from repro.tensor import Tensor
from repro.tensor.functional import im2col, im2col_cast


class _FlexiQMixin:
    """Mixed-precision machinery shared by FlexiQ linear and conv layers.

    Must precede the ``Quant*`` base class in the MRO so that its
    ``_on_weight_cache_invalidated`` override (which drops the prepared
    kernel) shadows the base class no-op.
    """

    def _init_flexiq_state(self) -> None:
        self.layout: Optional[ChannelLayout] = None
        self.extraction_plan: Optional[BitExtractionPlan] = None
        self.group_size: int = 1
        self.max_4bit_ch: int = 0
        self.dynamic_extract: bool = False
        self.low_bits: int = 4
        # Prepared-kernel cache (weight planes, permutations, factor tables).
        # ``use_prepared=False`` forces the uncached reference kernel, which
        # tests and benchmarks use for bit-exactness and speedup comparisons.
        self._prepared: Optional[PreparedKernel] = None
        self._out_scale_cache: Optional[np.ndarray] = None
        self._out_scale_src: Optional[tuple] = None
        self.use_prepared: bool = True

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def configure(
        self,
        layout: ChannelLayout,
        extraction_plan: BitExtractionPlan,
        group_size: int = 1,
        low_bits: int = 4,
    ) -> None:
        """Attach the channel layout and bit-extraction plan to this layer.

        ``extraction_plan`` is given in the *original* channel order; it is
        permuted into the layout order here so the runtime kernel can slice
        leading channels directly.
        """
        if layout.num_channels != self.feature_channels:
            raise ValueError(
                f"layout has {layout.num_channels} channels, layer expects "
                f"{self.feature_channels}"
            )
        if extraction_plan.num_channels != self.feature_channels:
            raise ValueError("extraction plan does not match layer channels")
        plan = extraction_plan
        if group_size > 1:
            # Shifts are shared within hardware channel groups; channel counts
            # that are not a multiple of the group size pad the last group.
            plan = plan.group_reduce(group_size)
        self.layout = layout
        self.group_size = int(group_size)
        self.low_bits = int(low_bits)
        order = layout.order
        self.extraction_plan = BitExtractionPlan(
            weight_shift=plan.weight_shift[order],
            act_shift=plan.act_shift[order],
            high_bits=plan.high_bits,
            low_bits=low_bits,
        )
        self.max_4bit_ch = 0
        # The layout/plan changed, so any prepared weight planes are stale.
        # Rebuild eagerly when the layer is already frozen: all weight-side
        # work happens here, at configure time, never per forward.
        self._prepared = None
        self.prepare()

    def set_boundary(self, boundary: int) -> None:
        """Set the number of leading (permuted) channels computed in 4-bit."""
        if self.layout is None:
            raise RuntimeError("configure() must be called before set_boundary")
        if not 0 <= boundary <= self.feature_channels:
            raise ValueError("boundary out of range")
        self.max_4bit_ch = int(boundary)

    def set_ratio(self, ratio: float) -> None:
        """Set the 4-bit prefix from a configured target ratio."""
        if self.layout is None:
            raise RuntimeError("configure() must be called before set_ratio")
        self.set_boundary(self.layout.boundary_for(ratio))

    def set_dynamic_extraction(self, enabled: bool) -> None:
        self.dynamic_extract = bool(enabled)

    # ------------------------------------------------------------------
    # Prepared-kernel cache
    # ------------------------------------------------------------------
    @property
    def kernel_taps(self) -> int:
        """Consecutive GEMM columns per feature channel (k*k for convs)."""
        return 1

    @property
    def _supports_prepared(self) -> bool:
        return True

    def prepare(self) -> Optional[PreparedKernel]:
        """Build (or refresh) the prepared kernel for this layer.

        Returns ``None`` when the layer is not ready (not configured, not
        frozen, or the mixed-precision path does not apply) or when the
        prepared path is disabled via ``use_prepared``.
        """
        if not self._uses_prepared():
            return None
        prepared = self._get_prepared(self.kernel_taps)
        # Pre-build the combined planes for every ratio boundary of the
        # layout so set_ratio() switches between fully prepared states.
        # Boundary 0 needs no plane (the kernel uses the 8-bit plane as is).
        boundaries = {self.max_4bit_ch}
        boundaries.update(self.layout.boundaries.values())
        prepared.prepare_boundaries(b for b in boundaries if b > 0)
        return prepared

    def _get_prepared(self, taps: int) -> PreparedKernel:
        prepared = self._prepared
        if prepared is not None and prepared.matches(self, taps):
            return prepared
        prepared = PreparedKernel.build(self, taps)
        self._prepared = prepared
        return prepared

    def _on_weight_cache_invalidated(self) -> None:
        # The prepared planes are derived from the cached integer weights.
        self._prepared = None
        self._out_scale_cache = None

    def _output_scale(self) -> np.ndarray:
        """Per-output-channel dequantization scale, cached as float64.

        Keyed on the identity of both QuantParams objects so analysis code
        that rebinds them (e.g. uniform-INT4 comparisons) never sees a stale
        scale.
        """
        src = self._out_scale_src
        if (
            self._out_scale_cache is None
            or src[0] is not self.act_qparams
            or src[1] is not self.weight_qparams
        ):
            self._out_scale_cache = (
                self.act_qparams.scale * self.weight_qparams.scale
            ).astype(np.float64)
            self._out_scale_src = (self.act_qparams, self.weight_qparams)
        return self._out_scale_cache

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def current_4bit_fraction(self) -> float:
        return self.max_4bit_ch / max(self.feature_channels, 1)

    def effective_weight_bits(self) -> float:
        """Average weight bitwidth given the current 4-bit prefix."""
        frac = self.current_4bit_fraction()
        return 4.0 * frac + self.weight_bits * (1.0 - frac)

    # ------------------------------------------------------------------
    # Mixed-precision integer GEMM
    # ------------------------------------------------------------------
    def _uses_prepared(self) -> bool:
        return (
            self.use_prepared
            and self._supports_prepared
            and self.layout is not None
            and self.extraction_plan is not None
            and self.weight_qparams is not None
        )

    def _flexiq_matmul(self, q_x: np.ndarray, taps: int) -> np.ndarray:
        """Uncached mixed-precision GEMM, weight quantization included.

        This is the reference path the quantized forwards fall back to when
        the prepared kernel is disabled or not applicable: it re-derives all
        weight-side state from the float weights on every call, exactly as
        the seed implementation did.  It is a bit-exact equivalent of the
        prepared path: every operand is a small integer times an exact power
        of two, so all float64 products and sums are exactly representable
        regardless of evaluation order.
        """
        q_w = quantize(self._weight_reference().data, self.weight_qparams)
        w_mat = q_w.astype(np.float64).reshape(q_w.shape[0], -1)
        return self._mixed_precision_matmul(q_x, w_mat, taps=taps)

    def _mixed_precision_matmul(
        self, q_x: np.ndarray, q_w: np.ndarray, taps: int = 1
    ) -> np.ndarray:
        """Compute ``q_x @ q_w.T`` with a 4-bit prefix and an 8-bit remainder.

        This is the uncached reference kernel; :meth:`_flexiq_matmul` prefers
        the prepared kernel and only falls back here.

        ``q_x``: (rows, channels * taps) integer activations, channel-major.
        ``q_w``: (out, channels * taps) integer weights, channel-major.
        ``taps``: number of consecutive columns per feature channel (k*k for
        convolutions, 1 for linear layers).
        """
        if self.layout is None or self.extraction_plan is None:
            return q_x @ q_w.T

        channels = self.feature_channels
        order = self.layout.order
        boundary = self.max_4bit_ch

        if taps == 1:
            column_order = order
        else:
            column_order = (order[:, None] * taps + np.arange(taps)[None, :]).reshape(-1)
        x_perm = q_x[:, column_order]
        w_perm = q_w[:, column_order]

        split = boundary * taps
        acc = np.zeros((q_x.shape[0], q_w.shape[0]), dtype=np.float64)

        if split > 0:
            act_shift = self.extraction_plan.act_shift[:boundary]
            weight_shift = self.extraction_plan.weight_shift[:boundary]
            if self.dynamic_extract:
                act_shift = self._dynamic_act_shift(x_perm[:, :split], boundary, taps)
            act_shift_cols = np.repeat(act_shift, taps)
            weight_shift_cols = np.repeat(weight_shift, taps)

            x_low = lower_bits(x_perm[:, :split], act_shift_cols[None, :], self.low_bits)
            w_low = lower_bits(w_perm[:, :split], weight_shift_cols[None, :], self.low_bits)
            # Rescale each operand by its own shift; the product then carries
            # 2**(shift_a + shift_w), exactly the bit-shifted accumulation the
            # hardware performs per channel group.
            x_scaled = x_low.astype(np.float64) * np.power(2.0, act_shift_cols)[None, :]
            w_scaled = w_low.astype(np.float64) * np.power(2.0, weight_shift_cols)[None, :]
            acc += x_scaled @ w_scaled.T

        if split < channels * taps:
            acc += (
                x_perm[:, split:].astype(np.float64)
                @ w_perm[:, split:].astype(np.float64).T
            )
        return acc

    def _dynamic_act_shift(
        self, x_low_cols: np.ndarray, boundary: int, taps: int
    ) -> np.ndarray:
        """Per-channel extraction shifts computed from the runtime batch."""
        per_channel = x_low_cols.reshape(x_low_cols.shape[0], boundary, taps)
        max_abs = np.abs(per_channel).max(axis=(0, 2))
        shifts = extraction_shift(
            max_abs, high_bits=self.extraction_plan.high_bits, low_bits=self.low_bits
        )
        if self.group_size > 1:
            shifts = group_shared_max(shifts, self.group_size)
        return shifts


class FlexiQLinear(_FlexiQMixin, QuantLinear):
    """Fully connected layer with a runtime-adjustable 4-bit channel prefix."""

    def __init__(self, source: Linear, weight_bits: int = 8, act_bits: int = 8) -> None:
        super().__init__(source, weight_bits=weight_bits, act_bits=act_bits)
        self._init_flexiq_state()

    def _quantized_forward(self, x: Tensor) -> Tensor:
        if self._uses_prepared():
            # Fast path: fused quantize+cast, no activation permutation (the
            # layout is folded into the prepared weight planes), one GEMM,
            # in-place rescale.  Bit-exact with the reference branch below.
            rows = quantize_cast(x.data, self.act_qparams, np.float64).reshape(
                -1, self.in_features
            )
            prepared = self._get_prepared(1)
            acc = prepared.matmul(rows, self.max_4bit_ch, dynamic=self.dynamic_extract)
            np.multiply(acc, self._output_scale().reshape(1, -1), out=acc)
            if self.bias is not None:
                np.add(acc, self.bias.data.reshape(1, -1), out=acc)
            out = acc.astype(np.float32).reshape(x.shape[:-1] + (self.out_features,))
            return Tensor(out)
        if self.use_prepared and self.layout is None:
            # Unconfigured layers (e.g. first/last kept at 8 bits) still use
            # the cached integer weights of the uniform path.
            return super()._quantized_forward(x)
        q_x = quantize(x.data, self.act_qparams).astype(np.float64)
        rows = q_x.reshape(-1, self.in_features)
        acc = self._flexiq_matmul(rows, taps=1)
        scale = self.act_qparams.scale * self.weight_qparams.scale
        out = acc * scale.reshape(1, -1)
        if self.bias is not None:
            out = out + self.bias.data.reshape(1, -1)
        out = out.reshape(x.shape[:-1] + (self.out_features,))
        return Tensor(out.astype(np.float32))

    def __repr__(self) -> str:
        return (
            f"FlexiQLinear(in={self.in_features}, out={self.out_features}, "
            f"4bit={self.max_4bit_ch}/{self.in_features})"
        )


class FlexiQConv2d(_FlexiQMixin, QuantConv2d):
    """Convolution with a runtime-adjustable 4-bit feature-channel prefix."""

    def __init__(self, source: Conv2d, weight_bits: int = 8, act_bits: int = 8) -> None:
        super().__init__(source, weight_bits=weight_bits, act_bits=act_bits)
        self._init_flexiq_state()

    @property
    def kernel_taps(self) -> int:
        return self.kernel_size * self.kernel_size

    @property
    def _supports_prepared(self) -> bool:
        # Grouped/depthwise convolutions run the uniform quantized path.
        return self.groups == 1

    def _quantized_forward(self, x: Tensor) -> Tensor:
        if self.groups != 1:
            # Depthwise/grouped convolutions follow the uniform quantized path;
            # FlexiQ channel selection targets dense convolutions and linears.
            return super()._quantized_forward(x)
        n = x.shape[0]
        k = self.kernel_size
        if self._uses_prepared():
            # Fast path: quantize and bit-lower in the *image* domain (k*k
            # times less data than the unfolded columns; the extraction
            # shift is shared by all taps of a channel and every element-wise
            # step maps quantized/padded zero to zero, so this commutes with
            # im2col), gather+cast to the GEMM dtype in one fused pass, one
            # GEMM with the layout folded into the prepared planes, in-place
            # rescale.  Bit-exact with the reference ordering below.
            prepared = self._get_prepared(k * k)
            boundary = self.max_4bit_ch
            q_img = quantize_cast(x.data, self.act_qparams, np.float32)
            if self.dynamic_extract:
                # Dynamic extraction derives shifts from the unfolded window
                # values, so lowering stays in the column domain.
                q_cols, (out_h, out_w) = im2col_cast(
                    q_img, (k, k), self.stride, self.padding
                )
                rows = q_cols.reshape(-1, q_cols.shape[-1])
                acc = prepared.matmul(rows, boundary, dynamic=True)
            else:
                if boundary > 0:
                    inv, lo, hi = prepared.channel_tables(boundary)
                    np.multiply(q_img, inv.reshape(1, -1, 1, 1), out=q_img)
                    np.round(q_img, out=q_img)
                    np.clip(q_img, lo.reshape(1, -1, 1, 1), hi.reshape(1, -1, 1, 1), out=q_img)
                q_cols, (out_h, out_w) = im2col_cast(
                    q_img, (k, k), self.stride, self.padding
                )
                rows = q_cols.reshape(-1, q_cols.shape[-1])
                acc = prepared.gemm_lowered(rows, boundary)
            acc = acc.reshape(n, out_h * out_w, self.out_channels)
            np.multiply(acc, self._output_scale().reshape(1, 1, -1), out=acc)
            if self.bias is not None:
                np.add(acc, self.bias.data.reshape(1, 1, -1), out=acc)
            # Fused transpose + downcast: astype(order="C") gathers the
            # (N, out, P) layout and converts in a single pass.
            out = acc.transpose(0, 2, 1).astype(np.float32, order="C")
            return Tensor(out.reshape(n, self.out_channels, out_h, out_w))
        if self.use_prepared and self.layout is None:
            # Unconfigured layers (e.g. first/last kept at 8 bits) still use
            # the cached integer weights of the uniform path.
            return super()._quantized_forward(x)
        cols, (out_h, out_w) = im2col(x.data, (k, k), self.stride, self.padding)
        q_cols = quantize(cols, self.act_qparams).astype(np.float64)
        rows = q_cols.reshape(-1, q_cols.shape[-1])
        acc = self._flexiq_matmul(rows, taps=k * k)
        scale = self.act_qparams.scale * self.weight_qparams.scale
        out = acc.reshape(n, out_h * out_w, self.out_channels) * scale.reshape(1, 1, -1)
        if self.bias is not None:
            out = out + self.bias.data.reshape(1, 1, -1)
        out = out.transpose(0, 2, 1).reshape(n, self.out_channels, out_h, out_w)
        return Tensor(out.astype(np.float32))

    def __repr__(self) -> str:
        return (
            f"FlexiQConv2d(in={self.in_channels}, out={self.out_channels}, "
            f"k={self.kernel_size}, 4bit={self.max_4bit_ch}/{self.in_channels})"
        )


class FlexiQModel:
    """A quantized model whose 4-bit channel ratio can be switched at runtime."""

    def __init__(
        self,
        model: Module,
        layout_plan: LayoutPlan,
        selections: Dict[float, "ChannelSelection"],
        group_size: int,
    ) -> None:
        from repro.core.selection import ChannelSelection  # noqa: F401 (typing only)

        self.model = model
        self.layout_plan = layout_plan
        self.selections = selections
        self.group_size = group_size
        self.current_ratio: float = 0.0
        # Ratio switches performed by forward_batch (the serving hot path);
        # executors read deltas of this instead of re-deriving the switch
        # condition themselves.
        self.ratio_switches: int = 0
        self._flexiq_layers: List[Tuple[str, QuantizedLayer]] = [
            (name, module)
            for name, module in model.named_modules()
            if isinstance(module, (FlexiQLinear, FlexiQConv2d))
        ]

    # ------------------------------------------------------------------
    # Ratio control
    # ------------------------------------------------------------------
    @property
    def available_ratios(self) -> List[float]:
        return [0.0] + list(self.layout_plan.ratios)

    def flexiq_layers(self) -> List[Tuple[str, QuantizedLayer]]:
        return list(self._flexiq_layers)

    def set_ratio(self, ratio: float) -> None:
        """Switch every FlexiQ layer to the channel prefix for ``ratio``.

        The cost of this operation in the real system is a single variable
        update per layer (see Section 8.5); here it is a Python loop over the
        layers, and the hardware models charge the corresponding (negligible)
        switch latency.  With the prepared-kernel cache this holds literally:
        switching the ratio performs no weight requantization, re-permutation
        or plane lowering -- each layer just moves its boundary index.
        """
        for name, layer in self._flexiq_layers:
            if name in self.layout_plan.layouts:
                layer.set_ratio(ratio)
        self.current_ratio = float(ratio)

    def set_dynamic_extraction(self, enabled: bool) -> None:
        for _, layer in self._flexiq_layers:
            layer.set_dynamic_extraction(enabled)

    # ------------------------------------------------------------------
    # Prepared kernels
    # ------------------------------------------------------------------
    def prepare(self, use_prepared: Optional[bool] = None) -> int:
        """Eagerly build the prepared kernels of every FlexiQ layer.

        Forward passes build missing kernels lazily, so calling this is an
        optimization, not a requirement; the pipeline calls it once so the
        very first inference after construction is already on the fast path.
        ``use_prepared`` optionally toggles the prepared path on all layers
        (``False`` forces the uncached reference kernels, used by tests and
        benchmarks).  Returns the number of layers holding a prepared kernel.
        """
        return prepare_model(self.model, use_prepared=use_prepared)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def __call__(self, *args, **kwargs):
        return self.model(*args, **kwargs)

    def forward(self, *args, **kwargs):
        return self.model(*args, **kwargs)

    def forward_batch(
        self, x, ratio: Optional[float] = None
    ) -> Tuple[Tensor, float]:
        """Serve one batch: optional ratio switch, one forward, measured time.

        This is the serving engine's batch-forward hook
        (:class:`repro.serving.executors.RuntimeExecutor` calls it once per
        batch): the ratio switch is the O(1) per-layer variable update, the
        forward runs on the prepared kernels, and the returned wall-clock
        seconds stand in for the accelerator's batch service time.
        """
        if ratio is not None:
            if float(ratio) != self.current_ratio:
                self.ratio_switches += 1
            # Always apply, even when the ratio looks unchanged: it is a
            # handful of O(1) boundary updates, and it resynchronizes layers
            # whose boundaries were moved behind the model's back (direct
            # layer.set_boundary calls, freshly constructed models whose
            # current_ratio was never materialized).
            self.set_ratio(ratio)
        if not isinstance(x, Tensor):
            x = Tensor(np.asarray(x, dtype=np.float32))
        start = time.perf_counter()
        output = self.model(x)
        return output, time.perf_counter() - start

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def per_layer_4bit_fraction(self) -> Dict[str, float]:
        """Fraction of channels currently computed in 4-bit, per layer."""
        return {
            name: layer.current_4bit_fraction() for name, layer in self._flexiq_layers
        }

    def average_weight_bits(self) -> float:
        """Parameter-weighted average bitwidth at the current ratio."""
        from repro.quant.qmodel import model_average_bits

        return model_average_bits(self.model)

"""FlexiQ core: bit-lowering, channel selection, layout and the runtime.

The public entry point is :class:`repro.core.pipeline.FlexiQPipeline`, which
takes a pre-trained float model plus calibration data and produces a
:class:`repro.core.runtime.FlexiQModel` whose 4-bit channel ratio can be
switched at run time.
"""

from repro.core.bit_extraction import (
    BitExtractionPlan,
    dynamic_extraction_shift,
    extraction_shift,
    lower_bits,
    raise_bits,
    unused_bits,
)
from repro.core.scoring import ChannelScore, estimate_channel_scores
from repro.core.selection import (
    ChannelSelection,
    SelectionConfig,
    evolutionary_selection,
    greedy_selection,
    random_selection,
)
from repro.core.layout import LayoutPlan, build_layout_plan
from repro.core.prepared import PreparedKernel, prepare_model
from repro.core.runtime import FlexiQConv2d, FlexiQLinear, FlexiQModel
from repro.core.controller import AdaptiveRatioController, LatencyProfile
from repro.core.pipeline import FlexiQConfig, FlexiQPipeline

__all__ = [
    "AdaptiveRatioController",
    "BitExtractionPlan",
    "ChannelScore",
    "ChannelSelection",
    "FlexiQConfig",
    "FlexiQConv2d",
    "FlexiQLinear",
    "FlexiQModel",
    "FlexiQPipeline",
    "LatencyProfile",
    "LayoutPlan",
    "PreparedKernel",
    "SelectionConfig",
    "build_layout_plan",
    "dynamic_extraction_shift",
    "estimate_channel_scores",
    "evolutionary_selection",
    "extraction_shift",
    "greedy_selection",
    "build_layout_plan",
    "lower_bits",
    "prepare_model",
    "raise_bits",
    "random_selection",
    "unused_bits",
]

"""Optional finetuning with the specialized dual-bitwidth loss (Section 6).

For every batch the model runs two fake-quantized forward passes -- one at
the low bitwidth and one at the high bitwidth -- and the total loss combines
both (Equation 3):

    L_k     = CE(p(x; theta_k) | y_hard) + CE(p(x; theta_k) | p(x; theta_fp32))
    L_total = lambda * L_low + (1 - lambda) * L_high

The distillation term uses soft labels from the *full-precision* model, so
finetuning improves low-bitwidth accuracy without sacrificing high-bitwidth
accuracy.  After finetuning, quantization grids are re-calibrated because the
weights moved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

import numpy as np

from repro.data.synthetic import SyntheticImageDataset
from repro.nn.module import Module
from repro.quant.qmodel import calibrate_model, iter_quantized_layers
from repro.tensor import Tensor, functional as F, no_grad
from repro.train.optim import SGD, StepLR


@dataclass
class FinetuneConfig:
    """Hyper-parameters for FlexiQ finetuning (scaled-down Table 1 settings)."""

    epochs: int = 2
    batch_size: int = 32
    learning_rate: float = 1e-2
    momentum: float = 0.9
    weight_decay: float = 1e-4
    lr_step: int = 10
    lr_gamma: float = 0.1
    lambda_low: float = 0.5
    low_bits: int = 4
    high_bits: int = 8
    seed: int = 0


def set_qat_bits(model: Module, bits: Optional[int]) -> None:
    """Switch every quantized layer of ``model`` into (or out of) QAT mode."""
    for _, layer in iter_quantized_layers(model):
        layer.qat_bits = bits


def dual_bitwidth_loss(
    model: Module,
    images: np.ndarray,
    labels: np.ndarray,
    soft_labels: np.ndarray,
    config: FinetuneConfig,
    forward_fn: Optional[Callable[[Module, np.ndarray], Tensor]] = None,
) -> Tensor:
    """Compute Equation (3) for one batch (returns a differentiable scalar)."""
    forward_fn = forward_fn or (lambda m, batch: m(Tensor(batch)))

    def bitwidth_loss(bits: int) -> Tensor:
        set_qat_bits(model, bits)
        logits = forward_fn(model, images)
        hard = F.cross_entropy(logits, labels)
        soft = F.soft_cross_entropy(logits, soft_labels)
        return hard + soft

    low = bitwidth_loss(config.low_bits)
    high = bitwidth_loss(config.high_bits)
    set_qat_bits(model, None)
    return low * config.lambda_low + high * (1.0 - config.lambda_low)


def finetune_quantized_model(
    model: Module,
    float_model: Module,
    dataset: SyntheticImageDataset,
    config: FinetuneConfig = FinetuneConfig(),
) -> List[float]:
    """Finetune a calibrated quantized model with the specialized loss.

    Parameters
    ----------
    model:
        The quantized (calibrated) model whose weights will be updated.
    float_model:
        The frozen full-precision model providing distillation soft labels.
    dataset:
        Training data (the paper uses the original training set or a subset).

    Returns the per-epoch training losses.
    """
    optimizer = SGD(
        model.parameters(),
        lr=config.learning_rate,
        momentum=config.momentum,
        weight_decay=config.weight_decay,
    )
    scheduler = StepLR(optimizer, step_size=config.lr_step, gamma=config.lr_gamma)
    rng = np.random.default_rng(config.seed)
    float_model.eval()
    model.train()

    epoch_losses: List[float] = []
    for _ in range(config.epochs):
        losses = []
        for images, labels in dataset.train_batches(config.batch_size, rng=rng):
            with no_grad():
                soft_logits = float_model(Tensor(images)).data
            soft_labels = _softmax_np(soft_logits)
            optimizer.zero_grad()
            loss = dual_bitwidth_loss(model, images, labels, soft_labels, config)
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        scheduler.step()
        epoch_losses.append(float(np.mean(losses)))
    model.eval()
    set_qat_bits(model, None)
    return epoch_losses


def refresh_quantization(
    model: Module,
    calibration_batches: Iterable[np.ndarray],
    forward_fn: Optional[Callable[[Module, np.ndarray], Tensor]] = None,
) -> Module:
    """Re-calibrate all quantized layers after finetuning moved the weights."""
    for _, layer in iter_quantized_layers(model):
        layer.reset_calibration()
    return calibrate_model(model, calibration_batches, forward_fn=forward_fn)


def _softmax_np(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)

"""Channel error-estimation scores (Section 4.2).

For every feature channel the score multiplies

* the maximum value range of the weight parameters connected to that channel
  (taken across the output-channel dimension), and
* the observed activation range of the channel (from calibration data).

Channels with small scores are the cheapest to compute at low bitwidth:
their unused bits let the bit-extraction window cover them with little
additional quantization error.  The selection algorithms consume these
scores, optionally aggregated over hardware channel groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.nn.module import Module
from repro.quant.qmodel import iter_quantized_layers
from repro.quant.qmodules import QuantizedLayer


@dataclass
class ChannelScore:
    """Per-feature-channel error estimation scores for one layer."""

    layer_name: str
    scores: np.ndarray
    weight_range: np.ndarray
    act_range: np.ndarray

    def __post_init__(self) -> None:
        self.scores = np.asarray(self.scores, dtype=np.float64)
        self.weight_range = np.asarray(self.weight_range, dtype=np.float64)
        self.act_range = np.asarray(self.act_range, dtype=np.float64)

    @property
    def num_channels(self) -> int:
        return int(self.scores.shape[0])

    def group_scores(self, group_size: int) -> np.ndarray:
        """Aggregate scores over contiguous channel groups (sum within group)."""
        if self.num_channels % group_size != 0:
            raise ValueError(
                f"{self.layer_name}: {self.num_channels} channels not divisible "
                f"by group size {group_size}"
            )
        return self.scores.reshape(-1, group_size).sum(axis=1)

    def ranked_channels(self) -> np.ndarray:
        """Channel indices sorted from lowest (best) to highest score."""
        return np.argsort(self.scores, kind="stable")


def score_layer(name: str, layer: QuantizedLayer) -> ChannelScore:
    """Compute the error-estimation score for a single calibrated layer."""
    weight_matrix = layer._weight_matrix()  # (out, features, taps)
    weight_range = weight_matrix.max(axis=(0, 2)) - weight_matrix.min(axis=(0, 2))
    act_range_obj = layer.input_channel_range()
    act_range = act_range_obj.high - act_range_obj.low
    scores = weight_range * act_range
    return ChannelScore(
        layer_name=name,
        scores=scores,
        weight_range=weight_range,
        act_range=act_range,
    )


def estimate_channel_scores(
    model: Module,
    layer_names: Optional[List[str]] = None,
) -> Dict[str, ChannelScore]:
    """Score every quantized layer of a calibrated model.

    Parameters
    ----------
    model:
        A model whose Linear/Conv2d layers were replaced by calibrated
        :class:`~repro.quant.qmodules.QuantizedLayer` instances.
    layer_names:
        Restrict scoring to these layers (default: all quantized layers).
    """
    scores: Dict[str, ChannelScore] = {}
    for name, layer in iter_quantized_layers(model):
        if layer_names is not None and name not in layer_names:
            continue
        if not layer.act_channel_observer.initialized:
            raise RuntimeError(
                f"layer {name!r} has no calibration statistics; run calibrate_model first"
            )
        scores[name] = score_layer(name, layer)
    return scores

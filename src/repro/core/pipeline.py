"""End-to-end FlexiQ quantization pipeline.

:class:`FlexiQPipeline` reproduces the flow of Figure 2:

1. quantize the float model to 8-bit with FlexiQ-capable layers and calibrate
   activation ranges on sample data;
2. (optionally) finetune with the specialized dual-bitwidth loss and
   re-calibrate;
3. estimate per-channel error scores from the calibrated ranges;
4. for each target 4-bit ratio (ascending, nested) run the configured
   channel-selection algorithm, using the L2 distance to the 8-bit model's
   outputs on calibration data as the fitness signal;
5. build the memory-layout plan and attach extraction plans and layouts to
   every FlexiQ layer;
6. return a :class:`~repro.core.runtime.FlexiQModel` whose ratio can be
   switched at run time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.bit_extraction import BitExtractionPlan
from repro.core.finetune import FinetuneConfig, finetune_quantized_model, refresh_quantization
from repro.core.layout import ChannelLayout, build_layout_plan
from repro.core.runtime import FlexiQConv2d, FlexiQLinear, FlexiQModel
from repro.core.scoring import estimate_channel_scores
from repro.core.selection import (
    ChannelSelection,
    SelectionConfig,
    evolutionary_selection,
    greedy_selection,
    random_selection,
)
from repro.data.synthetic import SyntheticImageDataset
from repro.nn.layers import Conv2d, Linear
from repro.nn.module import Module
from repro.quant.qmodel import quantize_model
from repro.quant.qmodules import QuantizedLayer
from repro.quant.quantizers import quantize
from repro.tensor import Tensor, no_grad

ForwardFn = Callable[[Module, np.ndarray], Tensor]


@dataclass
class FlexiQConfig:
    """Configuration of the FlexiQ pipeline.

    The defaults match the paper's setup scaled to the synthetic models:
    8-bit base precision, 4-bit low precision, nested ratios of 25/50/75/100%
    and evolutionary channel selection.
    """

    ratios: Sequence[float] = (0.25, 0.5, 0.75, 1.0)
    high_bits: int = 8
    low_bits: int = 4
    first_last_bits: int = 8
    group_size: int = 4
    selection: str = "evolutionary"  # "evolutionary" | "greedy" | "random"
    selection_config: SelectionConfig = field(default_factory=SelectionConfig)
    fitness_samples: int = 32
    dynamic_extraction: bool = False
    naive_lowering: bool = False  # disable bit extraction (ablation baseline)
    finetune: bool = False
    finetune_config: FinetuneConfig = field(default_factory=FinetuneConfig)
    fixed_high_fraction: float = 0.0  # manually pin this fraction of groups to 8-bit
    seed: int = 0


class FlexiQPipeline:
    """Quantize a model with FlexiQ and produce a ratio-switchable runtime."""

    def __init__(
        self,
        model: Module,
        calibration_data: np.ndarray,
        config: FlexiQConfig = FlexiQConfig(),
        forward_fn: Optional[ForwardFn] = None,
        calibration_batch_size: int = 32,
        float_model: Optional[Module] = None,
        finetune_dataset: Optional[SyntheticImageDataset] = None,
    ) -> None:
        self.float_model = float_model if float_model is not None else model
        self.source_model = model
        self.calibration_data = np.asarray(calibration_data)
        self.config = config
        self.forward_fn: ForwardFn = forward_fn or (lambda m, batch: m(Tensor(batch)))
        self.calibration_batch_size = calibration_batch_size
        self.finetune_dataset = finetune_dataset
        # Populated by run().
        self.quantized_model: Optional[Module] = None
        self.selections: Dict[float, ChannelSelection] = {}
        self.scores = None
        self.selection_histories: Dict[float, List[float]] = {}

    # ------------------------------------------------------------------
    # Pipeline steps
    # ------------------------------------------------------------------
    def _calibration_batches(self) -> List[np.ndarray]:
        data = self.calibration_data
        return [
            data[start : start + self.calibration_batch_size]
            for start in range(0, len(data), self.calibration_batch_size)
        ]

    def _layer_factory(self, layer: Module, weight_bits: int, act_bits: int) -> QuantizedLayer:
        if isinstance(layer, Linear):
            return FlexiQLinear(layer, weight_bits=weight_bits, act_bits=act_bits)
        if isinstance(layer, Conv2d):
            return FlexiQConv2d(layer, weight_bits=weight_bits, act_bits=act_bits)
        raise TypeError(f"cannot quantize layer of type {type(layer).__name__}")

    def _build_quantized_model(self) -> Module:
        return quantize_model(
            self.source_model,
            weight_bits=self.config.high_bits,
            act_bits=self.config.high_bits,
            calibration_batches=self._calibration_batches(),
            first_last_bits=self.config.first_last_bits,
            layer_factory=self._layer_factory,
            forward_fn=self.forward_fn,
        )

    def _selectable_layers(self, model: Module) -> List[str]:
        """FlexiQ layers eligible for 4-bit channels (first/last excluded).

        The first and last quantizable layers were instantiated with
        ``first_last_bits`` and are still FlexiQ layers; they are excluded
        from selection so they always run at the base precision, matching
        the paper's convention.
        """
        flexiq = [
            name
            for name, module in model.named_modules()
            if isinstance(module, (FlexiQLinear, FlexiQConv2d))
        ]
        if len(flexiq) <= 2:
            return flexiq
        return flexiq[1:-1]

    def _extraction_plans(
        self, model: Module, layer_names: List[str]
    ) -> Dict[str, BitExtractionPlan]:
        """Per-layer static bit-extraction plans from calibration statistics."""
        plans: Dict[str, BitExtractionPlan] = {}
        for name in layer_names:
            layer = model.get_submodule(name)
            if self.config.naive_lowering:
                plans[name] = BitExtractionPlan.naive(
                    layer.feature_channels,
                    high_bits=self.config.high_bits,
                    low_bits=self.config.low_bits,
                )
                continue
            # Weight maxima per feature channel, in the integer domain.
            q_weight = quantize(layer._weight_reference().data, layer.weight_qparams)
            weight_matrix = np.abs(q_weight.reshape(q_weight.shape[0], layer.feature_channels, -1))
            weight_max_q = weight_matrix.max(axis=(0, 2))
            # Activation maxima per feature channel, in the integer domain.
            act_range = layer.input_channel_range()
            act_max_q = np.round(act_range.max_abs / layer.act_qparams.scale)
            act_max_q = np.clip(act_max_q, 0, layer.act_qparams.qmax)
            plans[name] = BitExtractionPlan.from_channel_maxima(
                weight_max_q,
                act_max_q,
                high_bits=self.config.high_bits,
                low_bits=self.config.low_bits,
            )
        return plans

    def _reference_outputs(self, model: Module, samples: np.ndarray) -> np.ndarray:
        with no_grad():
            return self.forward_fn(model, samples).data.copy()

    def _fitness_fn(
        self,
        model: Module,
        plans: Dict[str, BitExtractionPlan],
        samples: np.ndarray,
        reference: np.ndarray,
    ):
        """Loss = L2 distance between candidate outputs and 8-bit soft labels."""

        def fitness(selection: ChannelSelection) -> float:
            self._apply_selection(model, selection, plans)
            with no_grad():
                outputs = self.forward_fn(model, samples).data
            self._clear_selection(model)
            return float(np.linalg.norm(outputs - reference))

        return fitness

    def _apply_selection(
        self,
        model: Module,
        selection: ChannelSelection,
        plans: Dict[str, BitExtractionPlan],
    ) -> None:
        for name in selection.layers:
            layer = model.get_submodule(name)
            mask = selection.channel_mask(name)
            order = np.argsort(~mask, kind="stable")
            layout = ChannelLayout(layer_name=name, order=order, boundaries={})
            layer.configure(
                layout, plans[name],
                group_size=self.config.group_size, low_bits=self.config.low_bits,
            )
            layer.set_boundary(int(mask.sum()))
            layer.set_dynamic_extraction(self.config.dynamic_extraction)

    def _clear_selection(self, model: Module) -> None:
        for name, module in model.named_modules():
            if isinstance(module, (FlexiQLinear, FlexiQConv2d)) and module.layout is not None:
                module.set_boundary(0)

    def _fixed_high_masks(
        self, selection_layers: Dict[str, ChannelSelection], rng: np.random.Generator
    ):
        """Randomly pin a fraction of groups to 8-bit (Section 8.5 experiment)."""
        if self.config.fixed_high_fraction <= 0:
            return None
        fixed: Dict[str, np.ndarray] = {}
        for name, layer in selection_layers.items():
            mask = rng.random(layer.num_groups) < self.config.fixed_high_fraction
            fixed[name] = mask
        return fixed

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def run(self) -> FlexiQModel:
        """Execute the full pipeline and return the runtime model."""
        config = self.config
        model = self._build_quantized_model()

        if config.finetune:
            if self.finetune_dataset is None:
                raise ValueError("finetune=True requires a finetune_dataset")
            finetune_quantized_model(
                model, self.float_model, self.finetune_dataset, config.finetune_config
            )
            refresh_quantization(model, self._calibration_batches(), forward_fn=self.forward_fn)

        selectable = self._selectable_layers(model)
        self.scores = estimate_channel_scores(model, layer_names=selectable)
        plans = self._extraction_plans(model, selectable)

        samples = self.calibration_data[: config.fitness_samples]
        reference = self._reference_outputs(model, samples)
        fitness = self._fitness_fn(model, plans, samples, reference)

        rng = np.random.default_rng(config.seed)
        selections: Dict[float, ChannelSelection] = {}
        base: Optional[ChannelSelection] = None
        fixed_high = None
        for ratio in sorted(config.ratios):
            selection_config = config.selection_config
            if config.selection == "evolutionary":
                if fixed_high is None:
                    from repro.core.selection import build_layer_groups

                    layer_groups = build_layer_groups(self.scores, selection_config.group_size)
                    fixed_high = self._fixed_high_masks(layer_groups, rng)
                result = evolutionary_selection(
                    self.scores, ratio, fitness,
                    config=selection_config, base=base, fixed_high=fixed_high,
                    return_history=True,
                )
                selection, history = result
                self.selection_histories[ratio] = history
            elif config.selection == "greedy":
                selection = greedy_selection(
                    self.scores, ratio, config=selection_config, base=base
                )
            elif config.selection == "random":
                selection = random_selection(
                    self.scores, ratio, config=selection_config, base=base,
                    seed=config.seed,
                )
            else:
                raise ValueError(f"unknown selection strategy {config.selection!r}")
            selections[ratio] = selection
            base = selection

        layout_plan = build_layout_plan(selections)
        for name in selectable:
            layer = model.get_submodule(name)
            layer.configure(
                layout_plan.layout_for(name), plans[name],
                group_size=config.group_size, low_bits=config.low_bits,
            )
            layer.set_dynamic_extraction(config.dynamic_extraction)

        self.quantized_model = model
        self.selections = selections
        runtime = FlexiQModel(
            model=model,
            layout_plan=layout_plan,
            selections=selections,
            group_size=config.group_size,
        )
        runtime.set_ratio(0.0)
        # All weight-side state (quantized weights, permuted planes, factor
        # tables) is prepared here, once; serving-time forwards and ratio
        # switches never recompute it.
        runtime.prepare()
        return runtime


def evaluate_ratio_sweep(
    runtime: FlexiQModel,
    dataset: SyntheticImageDataset,
    ratios: Optional[Sequence[float]] = None,
    batch_size: int = 64,
) -> Dict[float, float]:
    """Accuracy (%) of a FlexiQ runtime at each available 4-bit ratio."""
    from repro.train.loop import evaluate_accuracy

    results: Dict[float, float] = {}
    for ratio in ratios if ratios is not None else runtime.available_ratios:
        runtime.set_ratio(ratio)
        results[float(ratio)] = evaluate_accuracy(runtime.model, dataset, batch_size=batch_size)
    return results

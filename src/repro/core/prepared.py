"""Prepared-kernel cache for the FlexiQ mixed-precision GEMM.

The real FlexiQ serving system (Section 8.5) switches the 4-bit channel ratio
with *a single variable update per layer*: all weight-side state -- the
quantized weights, the channel permutation, the lowered 4-bit weight planes
and the ``2**shift`` rescale factors -- lives in device memory, prepared
ahead of time.  This module reproduces that separation of prepare-time from
run-time work.

A :class:`PreparedKernel` snapshots everything about one layer's weight side
and extraction plan at prepare time, in *original* (unpermuted) column order:

* ``w8_t`` -- the int8 quantized weight matrix, stored transposed and as
  float64 so the GEMM consumes it without any per-call conversion;
* ``w4_t`` -- the lowered 4-bit weight planes ``lower_bits(w, weight_shift)
  * 2**weight_shift``, also transposed/float64 and GEMM-ready;
* per-boundary *combined* plane matrices: running at boundary ``b`` uses a
  matrix whose rows are the 4-bit planes for the ``b`` leading channels of
  the layout order and the 8-bit rows for the rest, together with per-column
  ``2**act_shift`` factor tables and clip bounds (built with :func:`np.ldexp`
  -- exact powers of two, no ``np.power`` on float64 in the hot path).

Because an integer GEMM is a sum over columns, folding the layout
permutation into the weight rows is exact: activations are never permuted at
inference time.  A forward pass is one fused element-wise lowering pass over
the activations followed by a single GEMM.  Every operand is a small integer
times an exact power of two, so all float64 products and sums are exactly
representable and the result is **bit-exact identical** to the uncached
reference path (``_FlexiQMixin._mixed_precision_matmul``) regardless of
BLAS summation order.

Prepare/invalidate lifecycle
----------------------------

* ``freeze()`` on a quantized layer caches the int8 quantized weights (see
  :meth:`repro.quant.qmodules.QuantizedLayer.quantized_weight`).
* ``configure()`` on a FlexiQ layer drops any stale prepared kernel and, when
  the layer is already frozen, eagerly rebuilds it for the new layout/plan,
  including the combined planes for every boundary of the layout (so
  ``set_ratio()`` switches between fully prepared states).
* ``set_boundary()`` / ``set_ratio()`` are O(1): they update one integer and
  never touch the prepared state (the paper's single-variable-update claim).
  A boundary outside the layout's ratio set builds its combined plane
  lazily, once, on first use.
* ``reset_calibration()`` and re-``freeze()`` invalidate both the quantized
  weight cache and the prepared kernel.
* Weight updates that rebind the parameter's ``.data`` array (the optimizer
  and ``load_state_dict`` both do) are detected automatically through an
  object-identity check; purely in-place mutation of the same array must be
  followed by an explicit ``invalidate_weight_cache()``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Optional, Tuple, TYPE_CHECKING

import numpy as np

from repro.core.bit_extraction import (
    extraction_shift,
    group_shared_max,
    lower_bits,
)
from repro.quant.quantizers import int_range

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import _FlexiQMixin

# Combined plane matrices are one (channels * taps, out) float64 array per
# boundary; serving uses only the layout's ratio boundaries, so a small cache
# never evicts in practice.  The cap bounds memory when callers sweep many
# ad-hoc boundaries (e.g. the GA fitness loop).
_MAX_BOUNDARY_PLANES = 16


class PreparedKernel:
    """Precomputed weight-side and plan-side state for one FlexiQ layer.

    All arrays are computed in :meth:`build` (plus lazily cached per-boundary
    combined planes) and only read afterwards.  ``weight_src`` keeps a
    reference to the exact weight array the kernel was prepared from so
    staleness can be detected with an ``is`` check, never a recompute.
    """

    #: Process-wide count of :meth:`build` calls.  Serving tests snapshot it
    #: around ratio-switching workloads to assert the single-variable-update
    #: claim: steady-state serving must never rebuild a prepared kernel (no
    #: weight requantization, re-permutation or plane lowering per batch).
    build_count: int = 0

    #: Process-wide count of lazy per-boundary constructions (combined
    #: planes, channel tables, prefix indices).  These are cheap relative to
    #: :meth:`build` but are exactly the plane-lowering work the O(1) switch
    #: claim excludes — if a workload cycles through more boundaries than
    #: ``_MAX_BOUNDARY_PLANES`` the LRU thrashes and this counter keeps
    #: rising per batch, so serving gates assert it stays flat after warmup.
    plane_build_count: int = 0

    def __init__(
        self,
        order: np.ndarray,
        w8_t: np.ndarray,
        w4_t: np.ndarray,
        act_shift: np.ndarray,
        taps: int,
        group_size: int,
        high_bits: int,
        low_bits: int,
        weight_src: np.ndarray,
        weight_qparams_src=None,
    ) -> None:
        self.order = order                # layout order: position -> channel
        self.w8_t = w8_t                  # (channels * taps, out) float64
        self.w4_t = w4_t                  # (channels * taps, out) float64
        self.act_shift = act_shift        # (channels,) original channel order
        self.taps = int(taps)
        self.channels = int(act_shift.shape[0])
        self.out_features = int(w8_t.shape[1])
        self.group_size = int(group_size)
        self.high_bits = int(high_bits)
        self.low_bits = int(low_bits)
        self.qmin_low, self.qmax_low = int_range(low_bits)
        self.weight_src = weight_src
        self.weight_qparams_src = weight_qparams_src
        self._act_shift_cols = np.repeat(act_shift, taps) if taps > 1 else act_shift
        # boundary -> (combined plane, inv factors, lo, hi), column domain
        self._boundary_planes: "OrderedDict[int, Tuple[np.ndarray, ...]]" = (
            OrderedDict()
        )
        # boundary -> (inv, lo, hi), per-channel (image) domain
        self._channel_tables: "OrderedDict[int, Tuple[np.ndarray, ...]]" = (
            OrderedDict()
        )
        # boundary -> (prefix column index, static act shifts per column)
        self._prefix_cache: "OrderedDict[int, Tuple[np.ndarray, np.ndarray]]" = (
            OrderedDict()
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def build(layer: "_FlexiQMixin", taps: int) -> "PreparedKernel":
        """Prepare the weight-side state of a configured, frozen layer."""
        if layer.layout is None or layer.extraction_plan is None:
            raise RuntimeError("configure() must be called before preparing")
        order = layer.layout.order
        plan = layer.extraction_plan  # stored in layout (permuted) order
        # Undo the layout permutation: shifts per *original* channel index.
        weight_shift = np.empty_like(plan.weight_shift)
        weight_shift[order] = plan.weight_shift
        act_shift = np.empty_like(plan.act_shift)
        act_shift[order] = plan.act_shift

        PreparedKernel.build_count += 1
        w8_t = layer._gemm_weight_t()  # shared, cached (channels * taps, out)
        weight_shift_cols = np.repeat(weight_shift, taps)
        w_low = lower_bits(w8_t.T, weight_shift_cols[None, :], layer.low_bits)
        w4 = w_low.astype(np.float64) * np.ldexp(1.0, weight_shift_cols)[None, :]
        return PreparedKernel(
            order=order,
            w8_t=w8_t,
            w4_t=np.ascontiguousarray(w4.T),
            act_shift=act_shift,
            taps=taps,
            group_size=layer.group_size,
            high_bits=plan.high_bits,
            low_bits=layer.low_bits,
            weight_src=layer._weight_reference().data,
            weight_qparams_src=layer.weight_qparams,
        )

    def matches(self, layer: "_FlexiQMixin", taps: int) -> bool:
        """Whether this kernel is still valid for the layer's current state."""
        return (
            self.taps == taps
            and self.weight_src is layer._weight_reference().data
            and self.weight_qparams_src is layer.weight_qparams
        )

    # ------------------------------------------------------------------
    # Per-boundary combined planes
    # ------------------------------------------------------------------
    def _prefix_info(self, boundary: int) -> Tuple[np.ndarray, np.ndarray]:
        """Cached (prefix column index, static act shifts per column).

        Both are pure functions of the boundary; the dynamic-extraction path
        needs them on every forward, so they are cached alongside the
        boundary planes instead of being rebuilt per batch.
        """
        cached = self._prefix_cache.get(boundary)
        if cached is not None:
            return cached
        PreparedKernel.plane_build_count += 1
        channels = self.order[:boundary]
        if self.taps == 1:
            prefix_cols = channels
        else:
            prefix_cols = (
                channels[:, None] * self.taps + np.arange(self.taps)[None, :]
            ).reshape(-1)
        entry = (prefix_cols, self._act_shift_cols[prefix_cols])
        self._prefix_cache[boundary] = entry
        while len(self._prefix_cache) > _MAX_BOUNDARY_PLANES:
            self._prefix_cache.popitem(last=False)
        return entry

    def prepare_boundaries(self, boundaries: Iterable[int]) -> None:
        """Eagerly build the combined planes for a set of boundaries."""
        for boundary in boundaries:
            self._boundary_plane(int(boundary))

    def _boundary_plane(self, boundary: int) -> Tuple[np.ndarray, ...]:
        cached = self._boundary_planes.get(boundary)
        if cached is not None:
            self._boundary_planes.move_to_end(boundary)
            return cached
        PreparedKernel.plane_build_count += 1
        total = self.channels * self.taps
        prefix_cols, shift_cols = self._prefix_info(boundary)
        if boundary == 0:
            combined = self.w8_t
        else:
            combined = self.w8_t.copy()
            combined[prefix_cols] = self.w4_t[prefix_cols]
            # Fold the static activation rescale (2**act_shift per column of
            # x, i.e. per *row* of the plane) into the prefix rows: the GEMM
            # then consumes the lowered activations directly and the fourth
            # element-wise pass disappears.  Exact: the rows are small
            # integers scaled by powers of two.
            combined[prefix_cols] *= np.ldexp(1.0, shift_cols)[:, None]
        # Element-wise lowering tables: prefix columns are lowered, the 8-bit
        # remainder passes through untouched (factor 1, unbounded clip
        # window; round() is exact on integer-valued floats).
        inv = np.ones(total)
        inv[prefix_cols] = np.ldexp(1.0, -shift_cols)
        lo = np.full(total, -np.inf)
        lo[prefix_cols] = self.qmin_low
        hi = np.full(total, np.inf)
        hi[prefix_cols] = self.qmax_low
        entry = (combined, inv[None, :], lo[None, :], hi[None, :])
        self._boundary_planes[boundary] = entry
        while len(self._boundary_planes) > _MAX_BOUNDARY_PLANES:
            self._boundary_planes.popitem(last=False)
        return entry

    def channel_tables(self, boundary: int) -> Tuple[np.ndarray, ...]:
        """Per-*channel* lowering tables (float32) for image-domain lowering.

        The extraction shift is shared by all taps of a feature channel, so a
        convolution can lower the quantized *image* (k*k times less data than
        the unfolded columns) and hand :meth:`gemm_lowered` activations that
        need no further element-wise work.  Exact: the factors are powers of
        two and every intermediate is exactly representable in float32.
        """
        cached = self._channel_tables.get(boundary)
        if cached is not None:
            return cached
        PreparedKernel.plane_build_count += 1
        prefix = self.order[:boundary]
        inv = np.ones(self.channels, dtype=np.float32)
        inv[prefix] = np.ldexp(1.0, -self.act_shift[prefix]).astype(np.float32)
        lo = np.full(self.channels, -np.inf, dtype=np.float32)
        lo[prefix] = self.qmin_low
        hi = np.full(self.channels, np.inf, dtype=np.float32)
        hi[prefix] = self.qmax_low
        entry = (inv, lo, hi)
        self._channel_tables[boundary] = entry
        while len(self._channel_tables) > _MAX_BOUNDARY_PLANES:
            self._channel_tables.popitem(last=False)
        return entry

    def gemm_lowered(self, q_x: np.ndarray, boundary: int) -> np.ndarray:
        """GEMM against the combined plane for already-lowered activations."""
        if boundary <= 0:
            return q_x @ self.w8_t
        return q_x @ self._boundary_plane(boundary)[0]

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def matmul(
        self, q_x: np.ndarray, boundary: int, dynamic: bool = False
    ) -> np.ndarray:
        """``q_x @ q_w.T`` with a 4-bit prefix of ``boundary`` layout channels.

        ``q_x`` is (rows, channels * taps) in *original* column order,
        integer-valued float64, and is modified in place (callers pass a
        freshly quantized buffer).  The layout permutation is folded into the
        prepared weight rows, so no activation permutation happens here: one
        fused element-wise lowering pass, then a single GEMM.
        """
        if boundary <= 0:
            return q_x @ self.w8_t
        combined, inv, lo, hi = self._boundary_plane(boundary)
        fac = None
        if dynamic:
            inv, fac = self._dynamic_tables(q_x, boundary)
        np.multiply(q_x, inv, out=q_x)
        np.round(q_x, out=q_x)
        np.clip(q_x, lo, hi, out=q_x)
        if fac is not None:
            # Dynamic shifts replace the static ones folded into the plane:
            # rescale by 2**(dynamic - static), an exact power of two.
            np.multiply(q_x, fac, out=q_x)
        return q_x @ combined

    def _dynamic_tables(
        self, q_x: np.ndarray, boundary: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Factor tables from runtime shifts (Section 8.6, dynamic extraction).

        The combined plane carries the *static* ``2**act_shift`` fold, so the
        post-clip factor is ``2**(dynamic - static)`` on prefix columns --
        still an exact power of two, keeping the kernel bit-exact with the
        reference dynamic path.
        """
        prefix_cols, static_cols = self._prefix_info(boundary)
        shifts = self.dynamic_act_shift(q_x, boundary)
        shift_cols = np.repeat(shifts, self.taps)
        total = self.channels * self.taps
        inv = np.ones(total)
        inv[prefix_cols] = np.ldexp(1.0, -shift_cols)
        fac = np.ones(total)
        fac[prefix_cols] = np.ldexp(1.0, shift_cols - static_cols)
        return inv[None, :], fac[None, :]

    def dynamic_act_shift(self, q_x: np.ndarray, boundary: int) -> np.ndarray:
        """Per-channel extraction shifts computed from the runtime batch.

        Returned in layout order (leading ``boundary`` channels), exactly as
        the reference kernel computes them from the permuted activations.
        """
        sub = q_x[:, self._prefix_info(boundary)[0]]
        per_channel = sub.reshape(sub.shape[0], boundary, self.taps)
        max_abs = np.abs(per_channel).max(axis=(0, 2))
        shifts = extraction_shift(
            max_abs, high_bits=self.high_bits, low_bits=self.low_bits
        )
        if self.group_size > 1:
            shifts = group_shared_max(shifts, self.group_size)
        return shifts

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """Device-memory footprint of the prepared planes (bytes)."""
        total = self.w8_t.nbytes + self.w4_t.nbytes + self.order.nbytes
        for combined, inv, lo, hi in self._boundary_planes.values():
            if combined is not self.w8_t and combined is not self.w4_t:
                total += combined.nbytes
            total += inv.nbytes + lo.nbytes + hi.nbytes
        return int(total)

    def __repr__(self) -> str:
        return (
            f"PreparedKernel(channels={self.channels}, taps={self.taps}, "
            f"out={self.out_features}, low_bits={self.low_bits}, "
            f"boundaries={sorted(self._boundary_planes)})"
        )


def prepare_model(model, use_prepared: Optional[bool] = None) -> int:
    """Eagerly (re)build prepared kernels for every FlexiQ layer of ``model``.

    Returns the number of layers prepared.  ``use_prepared`` optionally
    toggles the prepared path on every layer first (``None`` leaves it as
    is), which tests and benchmarks use to compare against the uncached
    reference implementation.
    """
    from repro.core.runtime import FlexiQConv2d, FlexiQLinear

    prepared = 0
    for _, module in model.named_modules():
        if not isinstance(module, (FlexiQLinear, FlexiQConv2d)):
            continue
        if use_prepared is not None:
            module.use_prepared = bool(use_prepared)
        if module.prepare() is not None:
            prepared += 1
    return prepared

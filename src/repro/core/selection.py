"""Low-bitwidth channel selection: random, greedy and evolutionary (Alg. 1).

A *selection* assigns each feature-channel group of each selectable layer to
either 4-bit or 8-bit computation.  Selection happens at the granularity of
hardware channel groups (32 channels on the paper's GPU, 64 on its NPU; the
scaled-down models here default to 4) and honours two structural constraints:

* **Nestedness** -- the channels chosen at a lower 4-bit ratio are a subset of
  those chosen at any higher ratio, which is what makes runtime ratio
  switching a single pointer update after layout optimization.
* **Fixed high-precision channels** -- channels the caller pins to 8-bit
  (used by the manual-selection experiment in Section 8.5) are never chosen.

The evolutionary algorithm follows Algorithm 1 of the paper: chromosomes are
per-group bit flags, crossover happens at layer boundaries, mutation flips
selected groups and re-balances within the layer with probability inversely
proportional to the error score, and an elitist strategy carries the best
chromosomes to the next generation.  Fitness is supplied by the caller (the
pipeline uses the L2 distance to the 8-bit model's soft labels).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.scoring import ChannelScore


# ----------------------------------------------------------------------
# Data structures
# ----------------------------------------------------------------------
@dataclass
class LayerGroups:
    """Static description of one selectable layer's channel groups."""

    layer_name: str
    num_channels: int
    group_size: int
    group_sizes: np.ndarray  # channels per group (last group may be smaller)
    group_scores: np.ndarray

    @property
    def num_groups(self) -> int:
        return len(self.group_sizes)


@dataclass
class ChannelSelection:
    """A concrete assignment of channel groups to 4-bit computation."""

    group_masks: Dict[str, np.ndarray]
    layers: Dict[str, LayerGroups]
    target_ratio: float

    def __post_init__(self) -> None:
        self.group_masks = {
            name: np.asarray(mask, dtype=bool) for name, mask in self.group_masks.items()
        }

    # -- ratios ----------------------------------------------------------
    def selected_channels(self, layer_name: str) -> int:
        layer = self.layers[layer_name]
        return int(layer.group_sizes[self.group_masks[layer_name]].sum())

    def total_channels(self) -> int:
        return int(sum(layer.num_channels for layer in self.layers.values()))

    def total_selected(self) -> int:
        return int(sum(self.selected_channels(name) for name in self.layers))

    def achieved_ratio(self) -> float:
        """Fraction of feature channels assigned to 4-bit computation."""
        total = self.total_channels()
        return self.total_selected() / total if total else 0.0

    def layer_ratio(self, layer_name: str) -> float:
        layer = self.layers[layer_name]
        return self.selected_channels(layer_name) / max(layer.num_channels, 1)

    # -- per-channel view --------------------------------------------------
    def channel_mask(self, layer_name: str) -> np.ndarray:
        """Expand the group mask of a layer to a per-channel boolean mask."""
        layer = self.layers[layer_name]
        mask = self.group_masks[layer_name]
        return np.repeat(mask, layer.group_sizes)

    # -- structural checks --------------------------------------------------
    def is_superset_of(self, other: "ChannelSelection") -> bool:
        """True if every group selected in ``other`` is also selected here."""
        for name, other_mask in other.group_masks.items():
            mask = self.group_masks.get(name)
            if mask is None or np.any(other_mask & ~mask):
                return False
        return True

    def copy(self) -> "ChannelSelection":
        return ChannelSelection(
            group_masks={name: mask.copy() for name, mask in self.group_masks.items()},
            layers=self.layers,
            target_ratio=self.target_ratio,
        )


@dataclass
class SelectionConfig:
    """Hyper-parameters of the selection algorithms.

    Defaults are scaled-down versions of the paper's settings (population 50,
    50 generations, elite 2, 10 parents, 1% mutation) chosen so an end-to-end
    sweep finishes in seconds on a CPU; the paper-scale values can be passed
    explicitly.
    """

    group_size: int = 4
    population_size: int = 10
    generations: int = 8
    elite_size: int = 2
    parent_size: int = 4
    mutation_prob: float = 0.05
    seed: int = 0


FitnessFn = Callable[[ChannelSelection], float]


# ----------------------------------------------------------------------
# Group construction
# ----------------------------------------------------------------------
def build_layer_groups(
    scores: Dict[str, ChannelScore], group_size: int
) -> Dict[str, LayerGroups]:
    """Partition each scored layer's channels into hardware groups."""
    layers: Dict[str, LayerGroups] = {}
    for name, score in scores.items():
        channels = score.num_channels
        full_groups = channels // group_size
        remainder = channels - full_groups * group_size
        sizes = [group_size] * full_groups + ([remainder] if remainder else [])
        group_sizes = np.asarray(sizes, dtype=np.int64)
        boundaries = np.cumsum(np.concatenate([[0], group_sizes]))
        group_scores = np.asarray(
            [
                score.scores[boundaries[i] : boundaries[i + 1]].sum()
                for i in range(len(group_sizes))
            ]
        )
        layers[name] = LayerGroups(
            layer_name=name,
            num_channels=channels,
            group_size=group_size,
            group_sizes=group_sizes,
            group_scores=group_scores,
        )
    return layers


def _empty_masks(layers: Dict[str, LayerGroups]) -> Dict[str, np.ndarray]:
    return {name: np.zeros(layer.num_groups, dtype=bool) for name, layer in layers.items()}


def _target_channels(layers: Dict[str, LayerGroups], ratio: float) -> int:
    total = sum(layer.num_channels for layer in layers.values())
    return int(round(total * ratio))


def _flatten(layers: Dict[str, LayerGroups]) -> List[Tuple[str, int]]:
    """All (layer, group index) pairs in a fixed order."""
    pairs: List[Tuple[str, int]] = []
    for name, layer in layers.items():
        pairs.extend((name, g) for g in range(layer.num_groups))
    return pairs


# ----------------------------------------------------------------------
# Baseline selectors
# ----------------------------------------------------------------------
def random_selection(
    scores: Dict[str, ChannelScore],
    target_ratio: float,
    config: SelectionConfig = SelectionConfig(),
    base: Optional[ChannelSelection] = None,
    fixed_high: Optional[Dict[str, np.ndarray]] = None,
    seed: Optional[int] = None,
) -> ChannelSelection:
    """Select channel groups uniformly at random until the target is met."""
    layers = base.layers if base is not None else build_layer_groups(scores, config.group_size)
    rng = np.random.default_rng(config.seed if seed is None else seed)
    selection = _seed_selection(layers, target_ratio, base)
    _fill_to_target(selection, rng, weighted=False, fixed_high=fixed_high)
    return selection


def greedy_selection(
    scores: Dict[str, ChannelScore],
    target_ratio: float,
    config: SelectionConfig = SelectionConfig(),
    base: Optional[ChannelSelection] = None,
    fixed_high: Optional[Dict[str, np.ndarray]] = None,
) -> ChannelSelection:
    """Select the globally lowest-score groups until the target is met."""
    layers = base.layers if base is not None else build_layer_groups(scores, config.group_size)
    selection = _seed_selection(layers, target_ratio, base)
    target = _target_channels(layers, target_ratio)

    candidates = []
    for name, layer in layers.items():
        for g in range(layer.num_groups):
            if selection.group_masks[name][g]:
                continue
            if fixed_high is not None and name in fixed_high and fixed_high[name][g]:
                continue
            candidates.append((layer.group_scores[g], name, g))
    candidates.sort(key=lambda item: item[0])

    for _, name, g in candidates:
        if selection.total_selected() >= target:
            break
        selection.group_masks[name][g] = True
    return selection


# ----------------------------------------------------------------------
# Evolutionary selection (Algorithm 1)
# ----------------------------------------------------------------------
def evolutionary_selection(
    scores: Dict[str, ChannelScore],
    target_ratio: float,
    fitness_fn: FitnessFn,
    config: SelectionConfig = SelectionConfig(),
    base: Optional[ChannelSelection] = None,
    fixed_high: Optional[Dict[str, np.ndarray]] = None,
    return_history: bool = False,
):
    """Run the genetic search of Algorithm 1 for one target ratio.

    ``fitness_fn`` must return a *loss* (lower is better); the pipeline uses
    the L2 distance between the candidate's logits and the 8-bit model's
    logits on calibration data.
    """
    layers = base.layers if base is not None else build_layer_groups(scores, config.group_size)
    rng = np.random.default_rng(config.seed)

    population: List[ChannelSelection] = []
    # One chromosome seeded with the greedy solution, the rest sampled with
    # probability inversely related to the group score.
    population.append(
        greedy_selection(scores, target_ratio, config, base=base, fixed_high=fixed_high)
    )
    while len(population) < config.population_size:
        candidate = _seed_selection(layers, target_ratio, base)
        _fill_to_target(candidate, rng, weighted=True, fixed_high=fixed_high)
        population.append(candidate)

    history: List[float] = []
    fitness = np.asarray([fitness_fn(individual) for individual in population])
    for _ in range(config.generations):
        order = np.argsort(fitness)
        history.append(float(fitness[order[0]]))
        elites = [population[i].copy() for i in order[: config.elite_size]]
        parents = [population[i] for i in order[: config.parent_size]]

        offspring: List[ChannelSelection] = []
        while len(offspring) < config.population_size - config.elite_size:
            mother, father = rng.choice(len(parents), size=2, replace=False)
            child_a, child_b = _crossover(parents[mother], parents[father], rng)
            for child in (child_a, child_b):
                _mutate(child, rng, config.mutation_prob, base, fixed_high)
                _repair(child, rng, base, fixed_high)
                offspring.append(child)
                if len(offspring) >= config.population_size - config.elite_size:
                    break

        population = elites + offspring
        fitness = np.concatenate(
            [
                fitness[order[: config.elite_size]],
                np.asarray([fitness_fn(individual) for individual in offspring]),
            ]
        )

    best_index = int(np.argmin(fitness))
    best = population[best_index]
    history.append(float(fitness[best_index]))
    if return_history:
        return best, history
    return best


# ----------------------------------------------------------------------
# GA internals
# ----------------------------------------------------------------------
def _seed_selection(
    layers: Dict[str, LayerGroups],
    target_ratio: float,
    base: Optional[ChannelSelection],
) -> ChannelSelection:
    """Start from the base selection (nested constraint) or an empty one."""
    masks = _empty_masks(layers)
    if base is not None:
        for name, mask in base.group_masks.items():
            masks[name] |= mask
    return ChannelSelection(group_masks=masks, layers=layers, target_ratio=target_ratio)


def _selectable_pairs(
    selection: ChannelSelection,
    fixed_high: Optional[Dict[str, np.ndarray]],
    selected: bool,
) -> List[Tuple[str, int]]:
    """Groups that are currently (un)selected and allowed to change."""
    pairs = []
    for name, layer in selection.layers.items():
        mask = selection.group_masks[name]
        for g in range(layer.num_groups):
            if mask[g] != selected:
                continue
            if fixed_high is not None and name in fixed_high and fixed_high[name][g]:
                continue
            pairs.append((name, g))
    return pairs


def _score_weights(selection: ChannelSelection, pairs: Sequence[Tuple[str, int]],
                   invert: bool) -> np.ndarray:
    """Sampling weights from group scores (inverted = prefer low scores)."""
    scores = np.asarray(
        [selection.layers[name].group_scores[g] for name, g in pairs], dtype=np.float64
    )
    if invert:
        weights = 1.0 / (scores + 1e-12)
    else:
        weights = scores + 1e-12
    total = weights.sum()
    if not np.isfinite(total) or total <= 0:
        return np.full(len(pairs), 1.0 / len(pairs))
    return weights / total


def _fill_to_target(
    selection: ChannelSelection,
    rng: np.random.Generator,
    weighted: bool,
    fixed_high: Optional[Dict[str, np.ndarray]],
) -> None:
    """Add groups until the selection reaches its target channel count."""
    target = _target_channels(selection.layers, selection.target_ratio)
    while selection.total_selected() < target:
        pairs = _selectable_pairs(selection, fixed_high, selected=False)
        if not pairs:
            break
        if weighted:
            weights = _score_weights(selection, pairs, invert=True)
            index = rng.choice(len(pairs), p=weights)
        else:
            index = rng.integers(len(pairs))
        name, g = pairs[index]
        selection.group_masks[name][g] = True


def _shrink_to_target(
    selection: ChannelSelection,
    rng: np.random.Generator,
    base: Optional[ChannelSelection],
    fixed_high: Optional[Dict[str, np.ndarray]],
) -> None:
    """Remove groups (never base ones) until the target count is respected."""
    target = _target_channels(selection.layers, selection.target_ratio)
    while selection.total_selected() > target:
        pairs = _selectable_pairs(selection, fixed_high, selected=True)
        if base is not None:
            pairs = [
                (name, g) for name, g in pairs if not base.group_masks[name][g]
            ]
        if not pairs:
            break
        weights = _score_weights(selection, pairs, invert=False)
        index = rng.choice(len(pairs), p=weights)
        name, g = pairs[index]
        selection.group_masks[name][g] = False


def _repair(
    selection: ChannelSelection,
    rng: np.random.Generator,
    base: Optional[ChannelSelection],
    fixed_high: Optional[Dict[str, np.ndarray]],
) -> None:
    """Restore the nested constraint and the target channel count."""
    if base is not None:
        for name, mask in base.group_masks.items():
            selection.group_masks[name] |= mask
    _fill_to_target(selection, rng, weighted=True, fixed_high=fixed_high)
    _shrink_to_target(selection, rng, base, fixed_high)


def _crossover(
    mother: ChannelSelection,
    father: ChannelSelection,
    rng: np.random.Generator,
) -> Tuple[ChannelSelection, ChannelSelection]:
    """Single-point crossover at a layer boundary."""
    names = list(mother.layers.keys())
    point = int(rng.integers(1, len(names))) if len(names) > 1 else 1
    child_a = mother.copy()
    child_b = father.copy()
    for name in names[point:]:
        child_a.group_masks[name] = father.group_masks[name].copy()
        child_b.group_masks[name] = mother.group_masks[name].copy()
    return child_a, child_b


def _mutate(
    selection: ChannelSelection,
    rng: np.random.Generator,
    mutation_prob: float,
    base: Optional[ChannelSelection],
    fixed_high: Optional[Dict[str, np.ndarray]],
) -> None:
    """Flip selected groups with small probability and re-balance per layer."""
    for name, layer in selection.layers.items():
        mask = selection.group_masks[name]
        base_mask = base.group_masks[name] if base is not None else np.zeros_like(mask)
        fixed_mask = (
            fixed_high[name]
            if fixed_high is not None and name in fixed_high
            else np.zeros_like(mask)
        )
        flips = 0
        for g in range(layer.num_groups):
            if mask[g] and not base_mask[g] and rng.random() < mutation_prob:
                mask[g] = False
                flips += 1
        if flips == 0:
            continue
        # Re-select an equal number of groups in the same layer, preferring
        # low-score groups (probability inversely proportional to the score).
        candidates = [
            g
            for g in range(layer.num_groups)
            if not mask[g] and not fixed_mask[g]
        ]
        if not candidates:
            continue
        scores = layer.group_scores[candidates] + 1e-12
        weights = (1.0 / scores) / (1.0 / scores).sum()
        chosen = rng.choice(
            candidates, size=min(flips, len(candidates)), replace=False, p=weights
        )
        mask[np.asarray(chosen, dtype=int)] = True

"""Effective bit extraction (the paper's "bit-lowering", Section 4.1).

Given values already quantized at a high bitwidth (8 bits), FlexiQ converts a
feature channel to a low bitwidth (4 bits) by extracting a window of bits
that starts just below the channel's highest *used* bit, instead of always
taking the top bits.  For channels whose value range leaves the top bits
unused this increases the effective precision of the 4-bit representation.

Terminology used throughout this module:

``used_bits``
    Number of magnitude bits needed to represent the channel's largest
    absolute quantized value (the sign bit is excluded).  An 8-bit channel
    has at most 7 used bits.
``shift`` (extraction position)
    The low-bitwidth value is ``round(q_high / 2**shift)``; reconstructing
    multiplies back by ``2**shift``.  Uniform (naive) lowering always uses
    ``shift = high_bits - low_bits``; FlexiQ uses
    ``shift = clip(used_bits - (low_bits - 1), 0, high_bits - low_bits)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.quant.quantizers import int_range


def unused_bits(max_abs_q: np.ndarray, bits: int = 8) -> np.ndarray:
    """Number of unused magnitude bits per channel.

    ``max_abs_q`` holds each channel's maximum absolute value in the
    ``bits``-wide integer domain.  A channel whose largest magnitude fits in
    ``k`` bits leaves ``bits - 1 - k`` magnitude bits unused.
    """
    max_abs_q = np.abs(np.asarray(max_abs_q, dtype=np.float64))
    used = used_bits(max_abs_q)
    return np.maximum((bits - 1) - used, 0).astype(np.int64)


def used_bits(max_abs_q: np.ndarray) -> np.ndarray:
    """Magnitude bits required to represent each value of ``max_abs_q``."""
    max_abs_q = np.abs(np.asarray(max_abs_q, dtype=np.float64))
    with np.errstate(divide="ignore"):
        bits = np.ceil(np.log2(np.floor(max_abs_q) + 1.0))
    return np.maximum(bits, 0).astype(np.int64)


def extraction_shift(
    max_abs_q: np.ndarray, high_bits: int = 8, low_bits: int = 4
) -> np.ndarray:
    """FlexiQ's static extraction position for each channel.

    The returned shift keeps the ``low_bits - 1`` most significant *used*
    magnitude bits (plus sign).  It never exceeds the naive shift
    ``high_bits - low_bits`` and never goes below zero.
    """
    naive = high_bits - low_bits
    shift = used_bits(max_abs_q) - (low_bits - 1)
    return np.clip(shift, 0, naive).astype(np.int64)


def dynamic_extraction_shift(
    q_values: np.ndarray, high_bits: int = 8, low_bits: int = 4, axis: Optional[int] = None
) -> np.ndarray:
    """Extraction position computed from the actual runtime values.

    Mirrors the hardware trick described in the paper: OR all values in the
    channel group together to find the highest set bit, then place the
    extraction window right below it.  ``axis`` selects the reduction axis
    (``None`` reduces over everything).
    """
    q_values = np.asarray(q_values)
    magnitudes = np.abs(q_values.astype(np.int64))
    if axis is None:
        max_abs = magnitudes.max() if magnitudes.size else 0
    else:
        max_abs = magnitudes.max(axis=axis)
    return extraction_shift(np.asarray(max_abs), high_bits=high_bits, low_bits=low_bits)


def group_shared_max(values: np.ndarray, group_size: int) -> np.ndarray:
    """Share the maximum value within contiguous groups of ``group_size``.

    The last group may be shorter than ``group_size``; it shares the maximum
    of its own (short) tail only.  Implemented as a padded reshape + reduce so
    it stays vectorized for any channel count.
    """
    values = np.asarray(values)
    if group_size <= 0:
        raise ValueError("group_size must be positive")
    n = values.shape[0]
    if group_size == 1 or n == 0:
        return values.copy()
    pad = (-n) % group_size
    if pad:
        if np.issubdtype(values.dtype, np.integer):
            fill = np.iinfo(values.dtype).min
        else:
            fill = -np.inf
        padded = np.concatenate([values, np.full(pad, fill, dtype=values.dtype)])
    else:
        padded = values
    shared = np.repeat(padded.reshape(-1, group_size).max(axis=1), group_size)
    return shared[:n]


def lower_bits(
    q_high: np.ndarray, shift: np.ndarray, low_bits: int = 4
) -> np.ndarray:
    """Convert high-bitwidth integers to ``low_bits`` using extraction ``shift``.

    ``shift`` broadcasts against ``q_high``.  Values whose magnitude exceeds
    the representable window saturate (this is the behaviour analysed in
    Figure 13).
    """
    qmin, qmax = int_range(low_bits)
    q_high = np.asarray(q_high, dtype=np.float64)
    factor = np.power(2.0, np.asarray(shift, dtype=np.float64))
    lowered = np.round(q_high / factor)
    return np.clip(lowered, qmin, qmax).astype(np.int32)


def raise_bits(q_low: np.ndarray, shift: np.ndarray) -> np.ndarray:
    """Map extracted low-bit values back onto the high-bit integer grid."""
    factor = np.power(2.0, np.asarray(shift, dtype=np.float64))
    return (np.asarray(q_low, dtype=np.float64) * factor).astype(np.int32)


def lowering_error(
    q_high: np.ndarray, shift: np.ndarray, low_bits: int = 4
) -> np.ndarray:
    """Absolute reconstruction error (in the high-bit integer domain)."""
    reconstructed = raise_bits(lower_bits(q_high, shift, low_bits), shift)
    return np.abs(np.asarray(q_high, dtype=np.float64) - reconstructed)


def saturation_fraction(
    q_high: np.ndarray, shift: np.ndarray, low_bits: int = 4
) -> float:
    """Fraction of values that saturate the low-bit window under ``shift``."""
    qmin, qmax = int_range(low_bits)
    q_high = np.asarray(q_high, dtype=np.float64)
    factor = np.power(2.0, np.asarray(shift, dtype=np.float64))
    lowered = np.round(q_high / factor)
    saturated = (lowered < qmin) | (lowered > qmax)
    if saturated.size == 0:
        return 0.0
    return float(np.mean(saturated))


@dataclass
class BitExtractionPlan:
    """Static per-feature-channel extraction positions for one layer.

    Attributes
    ----------
    weight_shift:
        Extraction shift for the weight values of each feature channel,
        shaped (feature_channels,).
    act_shift:
        Extraction shift for the activations of each feature channel,
        shaped (feature_channels,).
    high_bits, low_bits:
        Source and target bitwidths (8 and 4 throughout the paper).
    """

    weight_shift: np.ndarray
    act_shift: np.ndarray
    high_bits: int = 8
    low_bits: int = 4

    def __post_init__(self) -> None:
        self.weight_shift = np.asarray(self.weight_shift, dtype=np.int64)
        self.act_shift = np.asarray(self.act_shift, dtype=np.int64)
        if self.weight_shift.shape != self.act_shift.shape:
            raise ValueError("weight and activation shifts must align per channel")

    @property
    def num_channels(self) -> int:
        return int(self.weight_shift.shape[0])

    @property
    def naive_shift(self) -> int:
        return self.high_bits - self.low_bits

    def effective_weight_bits(self) -> np.ndarray:
        """Effective precision of the lowered weights per channel.

        A channel whose extraction window skips ``naive_shift - shift`` unused
        bits behaves like a ``low_bits + (naive_shift - shift)``-bit quantizer
        for in-range values.
        """
        gain = self.naive_shift - self.weight_shift
        return self.low_bits + gain

    @staticmethod
    def naive(num_channels: int, high_bits: int = 8, low_bits: int = 4) -> "BitExtractionPlan":
        """Plan equivalent to uniform bit lowering (always keep top bits)."""
        shift = np.full(num_channels, high_bits - low_bits, dtype=np.int64)
        return BitExtractionPlan(
            weight_shift=shift.copy(), act_shift=shift.copy(),
            high_bits=high_bits, low_bits=low_bits,
        )

    @staticmethod
    def from_channel_maxima(
        weight_max_q: np.ndarray,
        act_max_q: np.ndarray,
        high_bits: int = 8,
        low_bits: int = 4,
    ) -> "BitExtractionPlan":
        """Build a plan from per-channel maxima in the high-bit integer domain."""
        return BitExtractionPlan(
            weight_shift=extraction_shift(weight_max_q, high_bits, low_bits),
            act_shift=extraction_shift(act_max_q, high_bits, low_bits),
            high_bits=high_bits,
            low_bits=low_bits,
        )

    def group_reduce(self, group_size: int) -> "BitExtractionPlan":
        """Coarsen the plan so all channels in a hardware group share a shift.

        The group shift must accommodate the largest value in the group, so
        the maximum shift within each group is used.  Channel counts that are
        not a multiple of ``group_size`` are handled by treating the trailing
        channels as one short group.
        """
        if group_size <= 0:
            raise ValueError("group_size must be positive")
        return BitExtractionPlan(
            weight_shift=group_shared_max(self.weight_shift, group_size),
            act_shift=group_shared_max(self.act_shift, group_size),
            high_bits=self.high_bits,
            low_bits=self.low_bits,
        )

"""Post-processing layout optimization (Section 5).

After the selection algorithm has produced nested channel sets for the target
4-bit ratios, the channels of every layer are reordered so that

* channels selected at the lowest ratio come first,
* channels added by each higher ratio follow contiguously, and
* channels that always stay 8-bit come last.

With this order, running at ratio ``r`` means computing the first
``boundary(r)`` channels in 4-bit and the rest in 8-bit -- switching ratio is
a single per-layer pointer (``max_4bit_ch``) update.

In the paper this reordering is baked into the stored weights (steps 1 and 2)
and residual connections get an explicit runtime reorder operator (step 3).
In this reproduction the permutation is applied inside each FlexiQ layer's
kernel (functionally identical), and :class:`LayoutPlan` additionally records
which layers feed residual connections so the hardware latency model can
charge the paper's reorder overhead for them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.selection import ChannelSelection


@dataclass
class ChannelLayout:
    """Channel ordering and ratio boundaries for a single layer."""

    layer_name: str
    order: np.ndarray            # permutation: new position -> original channel
    boundaries: Dict[float, int]  # ratio -> number of leading 4-bit channels

    def __post_init__(self) -> None:
        self.order = np.asarray(self.order, dtype=np.int64)

    @property
    def num_channels(self) -> int:
        return int(self.order.shape[0])

    def boundary_for(self, ratio: float) -> int:
        """Largest configured boundary whose ratio does not exceed ``ratio``."""
        if not self.boundaries:
            return 0
        best = 0
        for configured, boundary in sorted(self.boundaries.items()):
            if configured <= ratio + 1e-9:
                best = boundary
        return best

    def inverse_order(self) -> np.ndarray:
        """Permutation mapping original channel index -> new position."""
        inverse = np.empty_like(self.order)
        inverse[self.order] = np.arange(self.num_channels)
        return inverse


@dataclass
class LayoutPlan:
    """Layouts for every FlexiQ layer plus residual-reorder bookkeeping."""

    layouts: Dict[str, ChannelLayout]
    ratios: List[float]
    residual_reorder_layers: List[str] = field(default_factory=list)

    def layout_for(self, layer_name: str) -> ChannelLayout:
        return self.layouts[layer_name]

    def num_residual_reorders(self) -> int:
        return len(self.residual_reorder_layers)


def _validate_nested(selections: Dict[float, ChannelSelection]) -> List[float]:
    ratios = sorted(selections)
    for lower, higher in zip(ratios, ratios[1:]):
        if not selections[higher].is_superset_of(selections[lower]):
            raise ValueError(
                f"selection at ratio {higher} does not include the channels "
                f"selected at ratio {lower}; layout requires nested selections"
            )
    return ratios


def build_channel_layout(
    layer_name: str,
    selections: Dict[float, ChannelSelection],
    ratios: Optional[Sequence[float]] = None,
) -> ChannelLayout:
    """Compute the channel order and boundaries for one layer."""
    ratios = list(ratios) if ratios is not None else sorted(selections)
    num_channels = selections[ratios[0]].layers[layer_name].num_channels

    # first_ratio[c] = smallest ratio at which channel c is selected
    # (np.inf when never selected).
    first_ratio = np.full(num_channels, np.inf)
    for ratio in sorted(ratios, reverse=True):
        mask = selections[ratio].channel_mask(layer_name)
        first_ratio[mask] = ratio

    order = np.argsort(first_ratio, kind="stable")
    boundaries = {
        ratio: int(np.count_nonzero(first_ratio <= ratio + 1e-9)) for ratio in ratios
    }
    return ChannelLayout(layer_name=layer_name, order=order, boundaries=boundaries)


def build_layout_plan(
    selections: Dict[float, ChannelSelection],
    residual_layers: Optional[Sequence[str]] = None,
) -> LayoutPlan:
    """Build layouts for all layers appearing in the (nested) selections.

    Parameters
    ----------
    selections:
        Mapping from target 4-bit ratio to the :class:`ChannelSelection`
        produced for that ratio.  Selections must be nested.
    residual_layers:
        Names of layers whose outputs feed residual connections and therefore
        need a runtime reorder operator (step 3 of the paper's procedure).
    """
    if not selections:
        raise ValueError("at least one selection is required")
    ratios = _validate_nested(selections)
    layer_names = list(selections[ratios[0]].layers.keys())
    layouts = {
        name: build_channel_layout(name, selections, ratios) for name in layer_names
    }
    return LayoutPlan(
        layouts=layouts,
        ratios=ratios,
        residual_reorder_layers=list(residual_layers or []),
    )


def reorder_weight_features(
    weight: np.ndarray, order: np.ndarray, layer_kind: str, kernel_size: int = 1
) -> np.ndarray:
    """Apply a feature-channel permutation to a layer's weight tensor.

    ``layer_kind`` is ``"linear"`` (weight shaped (out, in)) or ``"conv"``
    (weight shaped (out, in, k, k)).  This mirrors step 2 of the paper's
    procedure, where the *previous* layer's output permutation is folded into
    the next layer's weights; in the reproduction it is used by tests to
    verify that permuting features leaves layer outputs unchanged.
    """
    if layer_kind == "linear":
        return weight[:, order]
    if layer_kind == "conv":
        return weight[:, order, :, :]
    raise ValueError(f"unknown layer kind {layer_kind!r}")

"""Runtime 4-bit ratio controller for fluctuating workloads (Figure 9).

The controller follows the policy described in Section 8.3: the serving
system profiles latency as a function of request rate for every available
4-bit ratio (the Figure 8 sweep), then at runtime it monitors the observed
request rate and raises the 4-bit ratio whenever the profiled latency of the
current configuration exceeds a threshold; symmetrically it lowers the ratio
when a more accurate configuration would still meet the threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np


@dataclass
class LatencyProfile:
    """Profiled latency (seconds) per (ratio, request rate) grid point."""

    rates: np.ndarray                      # sorted request rates (req/s)
    latency_by_ratio: Dict[float, np.ndarray]  # ratio -> latency at each rate

    def __post_init__(self) -> None:
        self.rates = np.asarray(self.rates, dtype=np.float64)
        self.latency_by_ratio = {
            float(ratio): np.asarray(values, dtype=np.float64)
            for ratio, values in self.latency_by_ratio.items()
        }
        for ratio, values in self.latency_by_ratio.items():
            if len(values) != len(self.rates):
                raise ValueError(
                    f"profile for ratio {ratio} has {len(values)} points, "
                    f"expected {len(self.rates)}"
                )

    @property
    def ratios(self) -> List[float]:
        return sorted(self.latency_by_ratio)

    def latency(self, ratio: float, rate: float) -> float:
        """Interpolated latency for a ratio at a request rate.

        Rates beyond the profiled range are clamped to the boundary values,
        which errs on the safe side at very high load (the profile's last
        point is already saturated).
        """
        values = self.latency_by_ratio[float(ratio)]
        return float(np.interp(rate, self.rates, values))


@dataclass
class AdaptiveRatioController:
    """Threshold-based 4-bit ratio controller.

    Parameters
    ----------
    profile:
        Latency profile built offline (Figure 8 style sweep).
    latency_threshold:
        Target latency in seconds; the controller keeps the profiled latency
        of the active configuration below this value whenever possible.
    step_up_only:
        If True, emulate the paper's policy literally: only increase the
        ratio by one step when the threshold is exceeded.  If False (default)
        the controller also steps back down when a lower ratio would satisfy
        the threshold with the ``hysteresis`` margin, which is needed for
        long traces where load subsides.
    """

    profile: LatencyProfile
    latency_threshold: float
    step_up_only: bool = False
    hysteresis: float = 0.8
    current_ratio: float = 0.0
    history: List[Dict[str, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        ratios = self.profile.ratios
        if not ratios:
            raise ValueError("latency profile is empty")
        if self.current_ratio not in ratios:
            self.current_ratio = ratios[0]

    def _ratio_index(self, ratio: float) -> int:
        return self.profile.ratios.index(ratio)

    def update(self, observed_rate: float) -> float:
        """Observe the current request rate and return the ratio to use."""
        ratios = self.profile.ratios
        index = self._ratio_index(self.current_ratio)
        current_latency = self.profile.latency(self.current_ratio, observed_rate)

        if current_latency > self.latency_threshold and index < len(ratios) - 1:
            index += 1
        elif not self.step_up_only and index > 0:
            lower_latency = self.profile.latency(ratios[index - 1], observed_rate)
            if lower_latency < self.latency_threshold * self.hysteresis:
                index -= 1

        self.current_ratio = ratios[index]
        self.history.append(
            {
                "rate": float(observed_rate),
                "ratio": float(self.current_ratio),
                "profiled_latency": self.profile.latency(self.current_ratio, observed_rate),
            }
        )
        return self.current_ratio

    def average_ratio(self) -> float:
        """Time-averaged ratio over the controller's history."""
        if not self.history:
            return self.current_ratio
        return float(np.mean([entry["ratio"] for entry in self.history]))

    def as_policy(self, control_window: float = 1.0):
        """Adapt this controller to the serving engine's ratio-policy protocol.

        Returns an :class:`repro.serving.policies.AdaptiveRatioPolicy` that
        feeds the controller one observed-rate update per control window,
        making it interchangeable with fixed-ratio and schedule policies
        under :class:`repro.serving.engine.ServingEngine`.
        """
        from repro.serving.policies import AdaptiveRatioPolicy

        return AdaptiveRatioPolicy(self, control_window=control_window)


def build_profile_from_latency_fn(
    rates: Sequence[float],
    ratios: Sequence[float],
    latency_fn,
) -> LatencyProfile:
    """Helper to assemble a profile from ``latency_fn(ratio, rate) -> seconds``."""
    rates = np.asarray(sorted(rates), dtype=np.float64)
    table = {
        float(ratio): np.asarray([latency_fn(ratio, rate) for rate in rates])
        for ratio in ratios
    }
    return LatencyProfile(rates=rates, latency_by_ratio=table)
